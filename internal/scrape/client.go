// Package scrape implements the paper's data-collection methodology
// (§2.2) against a ULS portal: geographic search around the CME data
// center, site-based filtering to the MG radio service and FXO station
// class, per-licensee license enumeration with the ≥11-filings cutoff,
// and per-license detail-page scraping.
//
// The client is polite by construction — a minimum inter-request
// interval and bounded retries with backoff — because the same code is
// meant to be pointable at a real portal.
package scrape

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client is a rate-limited, retrying ULS portal client.
type Client struct {
	// BaseURL is the portal root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MinInterval is the minimum spacing between requests (0 = none).
	MinInterval time.Duration
	// MaxRetries bounds retries on 5xx and transport errors (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff, doubled per attempt (default
	// 50 ms).
	RetryBackoff time.Duration

	lastRequest time.Time
}

// NewClient returns a client with sane defaults for a local simulated
// portal (no rate limit, 3 retries).
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:      baseURL,
		HTTPClient:   http.DefaultClient,
		MaxRetries:   3,
		RetryBackoff: 50 * time.Millisecond,
	}
}

// SearchResult mirrors the portal's search row.
type SearchResult struct {
	CallSign string `json:"call_sign"`
	Licensee string `json:"licensee"`
	Service  string `json:"radio_service"`
	Status   string `json:"status"`
}

type searchPage struct {
	Total   int            `json:"total"`
	Page    int            `json:"page"`
	PerPage int            `json:"per_page"`
	Results []SearchResult `json:"results"`
}

// get fetches a URL with rate limiting and retries; it returns the body.
func (c *Client) get(ctx context.Context, u string) ([]byte, error) {
	client := c.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff << (attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if c.MinInterval > 0 {
			if wait := c.MinInterval - time.Since(c.lastRequest); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}
		c.lastRequest = time.Now()

		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("scrape: building request: %w", err)
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return body, nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("scrape: %s: server error %d", u, resp.StatusCode)
			continue // retryable
		default:
			return nil, &HTTPError{URL: u, StatusCode: resp.StatusCode}
		}
	}
	return nil, fmt.Errorf("scrape: %s: retries exhausted: %w", u, lastErr)
}

// HTTPError is a non-retryable HTTP failure (4xx).
type HTTPError struct {
	URL        string
	StatusCode int
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("scrape: %s: status %d", e.URL, e.StatusCode)
}

// searchAll pages through one search endpoint until all results are
// collected.
func (c *Client) searchAll(ctx context.Context, path string, params url.Values) ([]SearchResult, error) {
	var out []SearchResult
	perPage := 200
	for page := 1; ; page++ {
		p := url.Values{}
		for k, vs := range params {
			p[k] = vs
		}
		p.Set("page", strconv.Itoa(page))
		p.Set("per_page", strconv.Itoa(perPage))
		body, err := c.get(ctx, c.BaseURL+path+"?"+p.Encode())
		if err != nil {
			return nil, err
		}
		var sp searchPage
		if err := json.Unmarshal(body, &sp); err != nil {
			return nil, fmt.Errorf("scrape: decoding %s page %d: %w", path, page, err)
		}
		out = append(out, sp.Results...)
		if len(out) >= sp.Total || len(sp.Results) == 0 {
			return out, nil
		}
	}
}

// GeographicSearch finds licenses with any site within radiusKM of the
// given coordinate (§2.1's geographic search).
func (c *Client) GeographicSearch(ctx context.Context, lat, lon, radiusKM float64) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/geographic", url.Values{
		"lat":       {strconv.FormatFloat(lat, 'f', -1, 64)},
		"lon":       {strconv.FormatFloat(lon, 'f', -1, 64)},
		"radius_km": {strconv.FormatFloat(radiusKM, 'f', -1, 64)},
	})
}

// SiteSearch filters by radio service code and station class (§2.1's
// site-based search).
func (c *Client) SiteSearch(ctx context.Context, service, class string) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/site", url.Values{
		"service": {service},
		"class":   {class},
	})
}

// LicenseeSearch lists all licenses filed by an entity name.
func (c *Client) LicenseeSearch(ctx context.Context, name string) ([]SearchResult, error) {
	return c.searchAll(ctx, "/api/licensee", url.Values{"name": {name}})
}

// FetchDetailHTML retrieves the raw license detail page.
func (c *Client) FetchDetailHTML(ctx context.Context, callSign string) ([]byte, error) {
	return c.get(ctx, c.BaseURL+"/license/"+url.PathEscape(callSign))
}
