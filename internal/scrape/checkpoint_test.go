package scrape

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/geo"
	"hftnetview/internal/uls"
)

func testLicense(cs string) *uls.License {
	return &uls.License{
		CallSign: cs, LicenseID: 7, Licensee: "Alpha Net", FRN: "0000000007",
		RadioService: uls.ServiceMG, Status: uls.StatusActive,
		Grant: uls.NewDate(2015, time.June, 1),
		Locations: []uls.Location{
			{Number: 1, Point: geo.Point{Lat: 41.7, Lon: -88.2}, GroundElevation: 200, SupportHeight: 90},
			{Number: 2, Point: geo.Point{Lat: 41.9, Lon: -87.9}, GroundElevation: 195, SupportHeight: 85},
		},
		Paths: []uls.Path{{Number: 1, TXLocation: 1, RXLocation: 2,
			StationClass: uls.ClassFXO, FrequenciesMHz: []float64{11245.0},
			TXAzimuthDeg: 45.5, RXAzimuthDeg: 225.5, AntennaGainDBi: 38.1}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if state.plan != nil || len(state.completed) != 0 {
		t.Fatalf("fresh journal not empty: %+v", state)
	}
	key := planKey{Portal: "http://x", RadiusKM: 10, Service: "MG", Class: "FXO", MinFilings: 11}
	funnel := Funnel{GeographicMatches: 100, Candidates: 57,
		ShortlistedNames: []string{"Alpha Net"}, Shortlisted: 1}
	byName := map[string][]SearchResult{"Alpha Net": {{CallSign: "WQAA001", Licensee: "Alpha Net"}}}
	if err := cp.writePlan(key, funnel, byName); err != nil {
		t.Fatal(err)
	}
	want := testLicense("WQAA001")
	if err := cp.writeLicense(want); err != nil {
		t.Fatal(err)
	}
	if err := cp.writeFailure(DetailFailure{CallSign: "WQAA002", Class: "parse", Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := cp.close(); err != nil {
		t.Fatal(err)
	}

	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.close()
	if state.plan == nil || *state.plan.Options != key {
		t.Fatalf("plan did not round trip: %+v", state.plan)
	}
	if state.plan.GeographicMatches != 100 || state.plan.Candidates != 57 {
		t.Errorf("funnel counters lost: %+v", state.plan)
	}
	if len(state.plan.LicensesByName["Alpha Net"]) != 1 {
		t.Errorf("licenses_by_name lost: %+v", state.plan.LicensesByName)
	}
	got, ok := state.completed["WQAA001"]
	if !ok {
		t.Fatal("completed license missing after reload")
	}
	if got.CallSign != want.CallSign || got.Licensee != want.Licensee ||
		got.Grant != want.Grant || len(got.Paths) != 1 ||
		got.Paths[0].TXAzimuthDeg != want.Paths[0].TXAzimuthDeg {
		t.Errorf("license mangled in round trip: %+v", got)
	}
	// Failures are informational: they must not mark the call sign done.
	if _, done := state.completed["WQAA002"]; done {
		t.Error("failed call sign treated as completed")
	}
}

func TestCheckpointIgnoresTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.writeLicense(testLicense("WQAA001"))
	cp.close()
	// Simulate a crash mid-append: a second record cut partway through.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := strings.Replace(string(full), "WQAA001", "WQAA002", 1)
	partial = partial[:len(partial)-20] // drop the tail, including the newline
	if err := os.WriteFile(path, append(full, partial...), 0o644); err != nil {
		t.Fatal(err)
	}
	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatalf("truncated journal rejected: %v", err)
	}
	defer cp2.close()
	if _, ok := state.completed["WQAA001"]; !ok {
		t.Error("intact record lost")
	}
	if _, ok := state.completed["WQAA002"]; ok {
		t.Error("truncated record surfaced as completed")
	}
}

func TestCheckpointSkipsCorruptMiddle(t *testing.T) {
	// A corrupt line in the middle of a journal (a partial write that a
	// later append ran past, or disk-level damage) must cost only that
	// line: records after it still load, and the damage is counted so
	// the run can report it.
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.writeLicense(testLicense("WQAA001"))
	cp.writeLicense(testLicense("WQAA002"))
	cp.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), "{\"type\":\"license\"",
		"{\"type\":\"license\",}}}garbage", 1)
	if mangled == string(data) {
		t.Fatal("test did not mangle the journal")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatalf("corrupt mid-journal aborted the resume: %v", err)
	}
	defer cp2.close()
	if _, ok := state.completed["WQAA001"]; ok {
		t.Error("corrupted record surfaced as completed")
	}
	if _, ok := state.completed["WQAA002"]; !ok {
		t.Error("record after the corruption lost")
	}
	if state.skipped != 1 {
		t.Errorf("skipped = %d, want 1", state.skipped)
	}
}

func TestCheckpointSkipsInvalidLicense(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	// A license record that parses as JSON but fails Validate (no
	// licensee, no grant) must not be trusted — it is skipped (so the
	// call sign gets re-scraped) rather than poisoning the resume.
	if err := os.WriteFile(path,
		[]byte("{\"type\":\"license\",\"license\":{\"CallSign\":\"WQXX001\"}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatalf("invalid checkpointed license aborted the resume: %v", err)
	}
	defer cp.close()
	if _, ok := state.completed["WQXX001"]; ok {
		t.Error("invalid license surfaced as completed")
	}
	if state.skipped != 1 {
		t.Errorf("skipped = %d, want 1", state.skipped)
	}
}

// countLines returns the number of newline-terminated lines in the
// journal at path.
func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

func TestCheckpointCompactsDeadWeight(t *testing.T) {
	// A journal full of dead weight — failures that will be retried
	// anyway, a corrupt line, a license superseded by a re-scrape — is
	// rewritten on open to exactly plan + completed, and the rewrite
	// changes nothing a resume can observe.
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	key := planKey{Portal: "http://x", RadiusKM: 10, Service: "MG", Class: "FXO", MinFilings: 11}
	cp.writePlan(key, Funnel{GeographicMatches: 9}, nil)
	cp.writeLicense(testLicense("WQAA001"))
	cp.writeFailure(DetailFailure{CallSign: "WQAA002", Class: "fetch", Err: "timeout"})
	cp.writeFailure(DetailFailure{CallSign: "WQAA003", Class: "parse", Err: "boom"})
	stale := testLicense("WQAA004")
	stale.Licensee = "Stale Name"
	cp.writeLicense(stale)
	fresh := testLicense("WQAA004") // re-scrape supersedes the record above
	cp.writeLicense(fresh)
	cp.close()
	if err := os.WriteFile(path, append(mustRead(t, path), []byte("not json\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp2.close()
	if state.plan == nil || *state.plan.Options != key || state.plan.GeographicMatches != 9 {
		t.Fatalf("plan lost in compaction: %+v", state.plan)
	}
	if len(state.completed) != 2 {
		t.Fatalf("completed = %d licenses, want 2", len(state.completed))
	}
	if got := state.completed["WQAA004"]; got == nil || got.Licensee != fresh.Licensee {
		t.Fatalf("compaction kept the superseded record: %+v", got)
	}
	// plan + 2 licenses: failures, corruption, and the stale duplicate
	// are gone from disk, not just from memory.
	if n := countLines(t, path); n != 3 {
		t.Errorf("compacted journal has %d lines, want 3", n)
	}
	if _, err := os.Stat(path + compactSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("compaction temp file survived: %v", err)
	}

	// A third open sees a clean journal and leaves it byte-identical.
	before := mustRead(t, path)
	cp3, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp3.close()
	if len(state.completed) != 2 || state.skipped != 0 {
		t.Fatalf("clean reopen state wrong: %+v", state)
	}
	if after := mustRead(t, path); string(after) != string(before) {
		t.Error("opening a clean journal rewrote it")
	}
}

func TestCheckpointCompactsTruncatedTail(t *testing.T) {
	// A partial final line must be cut from disk on open: appending
	// after it would weld the next record onto the fragment and lose
	// both. After compaction, new appends land on their own lines.
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.writeLicense(testLicense("WQAA001"))
	cp.close()
	full := mustRead(t, path)
	partial := strings.Replace(string(full), "WQAA001", "WQAA002", 1)
	partial = partial[:len(partial)-20]
	if err := os.WriteFile(path, append(full, partial...), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := state.completed["WQAA001"]; !ok {
		t.Fatal("intact record lost in compaction")
	}
	if err := cp2.writeLicense(testLicense("WQAA003")); err != nil {
		t.Fatal(err)
	}
	cp2.close()

	cp3, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp3.close()
	if _, ok := state.completed["WQAA003"]; !ok {
		t.Error("record appended after compaction was lost — it welded onto the truncated tail")
	}
	if len(state.completed) != 2 || state.skipped != 0 {
		t.Errorf("state after append-past-truncation = %+v, want 2 completed and 0 skipped", state)
	}
}

func TestCheckpointSweepsStaleCompactionTemp(t *testing.T) {
	// A crash between writing the temp file and renaming it leaves a
	// *.compact.tmp next to the journal; the next open must remove it
	// and trust the original.
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.writeLicense(testLicense("WQAA001"))
	cp.close()
	if err := os.WriteFile(path+compactSuffix, []byte("half-written rewrite"), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, state, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp2.close()
	if _, ok := state.completed["WQAA001"]; !ok {
		t.Error("original journal not trusted after crashed compaction")
	}
	if _, err := os.Stat(path + compactSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale compaction temp not swept: %v", err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunRejectsMismatchedCheckpoint(t *testing.T) {
	// A journal recorded for one funnel must refuse to resume another.
	path := filepath.Join(t.TempDir(), "journal.json")
	cp, _, err := openCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	other := planKey{Portal: "http://elsewhere:1", RadiusKM: 25, Service: "MG", Class: "FXO", MinFilings: 3}
	if err := cp.writePlan(other, Funnel{}, nil); err != nil {
		t.Fatal(err)
	}
	cp.close()

	_, c := startPortal(t)
	opts := DefaultPipelineOptions()
	opts.CheckpointPath = path
	_, _, err = Run(context.Background(), c, opts)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}
