package scrape

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hftnetview/internal/uls"
)

// countingHandler wraps a handler and counts requests.
type countingHandler struct {
	n    atomic.Int64
	next http.HandlerFunc
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.n.Add(1)
	h.next(w, r)
}

func TestMaxRetriesZeroMeansNoRetries(t *testing.T) {
	h := &countingHandler{next: func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 0
	c.RetryBackoff = time.Millisecond
	if _, err := c.get(context.Background(), ts.URL+"/x"); err == nil {
		t.Fatal("get succeeded against a dead server")
	}
	if got := h.n.Load(); got != 1 {
		t.Errorf("server saw %d requests with MaxRetries=0, want exactly 1", got)
	}
	// Negative values behave like 0, not like the default.
	h.n.Store(0)
	c.MaxRetries = -5
	c.get(context.Background(), ts.URL+"/x")
	if got := h.n.Load(); got != 1 {
		t.Errorf("server saw %d requests with MaxRetries=-5, want exactly 1", got)
	}
}

func TestNewClientDefaultStillRetries(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) < 3 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	body, err := c.get(context.Background(), ts.URL+"/x")
	if err != nil {
		t.Fatalf("default client gave up: %v", err)
	}
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
}

func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond // would retry almost instantly on its own
	start := time.Now()
	if _, err := c.get(context.Background(), ts.URL+"/x"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s from Retry-After", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	if d := parseRetryAfter(mk("7")); d != 7*time.Second {
		t.Errorf("seconds form = %v, want 7s", d)
	}
	if d := parseRetryAfter(mk("")); d != 0 {
		t.Errorf("absent header = %v, want 0", d)
	}
	if d := parseRetryAfter(mk("-3")); d != 0 {
		t.Errorf("negative = %v, want 0", d)
	}
	if d := parseRetryAfter(mk("garbage")); d != 0 {
		t.Errorf("garbage = %v, want 0", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk(future)); d < 25*time.Second || d > 31*time.Second {
		t.Errorf("HTTP-date form = %v, want ~30s", d)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 1000
	c.RetryBackoff = 20 * time.Millisecond
	c.RetryBudget = 100 * time.Millisecond
	start := time.Now()
	_, err := c.get(context.Background(), ts.URL+"/x")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// The underlying failure must still be visible for diagnosis.
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 503 {
		t.Errorf("budget error does not wrap the last HTTP failure: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budget of 100ms took %v to trip", elapsed)
	}
}

func TestRequestTimeoutBoundsHangs(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			select { // hang well past the client's patience
			case <-time.After(5 * time.Second):
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RequestTimeout = 50 * time.Millisecond
	c.RetryBackoff = time.Millisecond
	start := time.Now()
	body, err := c.get(context.Background(), ts.URL+"/x")
	if err != nil {
		t.Fatalf("hang was not retried: %v", err)
	}
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("recovery from hang took %v", elapsed)
	}
}

func TestMalformedJSONRetried(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			fmt.Fprint(w, `{"total": 1, "results": [{"call_si`) // cut mid-token
			return
		}
		json.NewEncoder(w).Encode(searchPage{Total: 1, Results: []SearchResult{{CallSign: "WQAA001"}}})
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	var sp searchPage
	if err := c.getJSON(context.Background(), ts.URL+"/x", &sp); err != nil {
		t.Fatalf("malformed body not retried: %v", err)
	}
	if len(sp.Results) != 1 || sp.Results[0].CallSign != "WQAA001" {
		t.Errorf("decoded page = %+v", sp)
	}
}

// lyingPortal claims totalClaim results but serves only the given pages.
func lyingPortal(t *testing.T, totalClaim int, pages ...[]SearchResult) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		page := 1
		fmt.Sscan(r.URL.Query().Get("page"), &page)
		sp := searchPage{Total: totalClaim, Page: page, PerPage: 200}
		if page-1 < len(pages) {
			sp.Results = pages[page-1]
		}
		json.NewEncoder(w).Encode(sp)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestSearchAllLyingTotal(t *testing.T) {
	ts := lyingPortal(t, 50, []SearchResult{{CallSign: "WQAA001"}, {CallSign: "WQAA002"}})
	c := NewClient(ts.URL)
	got, err := c.SiteSearch(context.Background(), uls.ServiceMG, uls.ClassFXO)
	var te *TruncatedResultsError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TruncatedResultsError", err)
	}
	if te.Reported != 50 || te.Got != 2 {
		t.Errorf("error = %+v, want Reported=50 Got=2", te)
	}
	// The partial results come back with the error.
	if len(got) != 2 {
		t.Errorf("partial results = %d, want 2", len(got))
	}
}

func TestSearchAllDeduplicatesAcrossPages(t *testing.T) {
	// A corpus shifting under the crawl can repeat rows across pages;
	// the client must not double-count them. Here pages 1 and 2 overlap
	// and together carry the claimed 3 distinct results.
	ts := lyingPortal(t, 3,
		[]SearchResult{{CallSign: "WQAA001"}, {CallSign: "WQAA002"}},
		[]SearchResult{{CallSign: "WQAA002"}, {CallSign: "WQAA003"}},
	)
	c := NewClient(ts.URL)
	got, err := c.SiteSearch(context.Background(), uls.ServiceMG, uls.ClassFXO)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("results = %d, want 3 after dedup", len(got))
	}
	seen := map[string]bool{}
	for _, r := range got {
		if seen[r.CallSign] {
			t.Errorf("duplicate %s survived dedup", r.CallSign)
		}
		seen[r.CallSign] = true
	}
}

func TestSearchAllCapsEndlessPagination(t *testing.T) {
	// A portal that always has "one more page" of already-seen rows and
	// a Total that can never be reached: the pager must terminate with
	// a typed error instead of looping forever.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(searchPage{
			Total:   1_000_000,
			Results: []SearchResult{{CallSign: "WQAA001"}},
		})
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	done := make(chan error, 1)
	go func() {
		_, err := c.SiteSearch(context.Background(), uls.ServiceMG, uls.ClassFXO)
		done <- err
	}()
	select {
	case err := <-done:
		var te *TruncatedResultsError
		if !errors.As(err, &te) {
			t.Fatalf("err = %v, want TruncatedResultsError", err)
		}
		if te.Got != 1 {
			t.Errorf("Got = %d, want 1 distinct result", te.Got)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("endless pagination was not capped")
	}
}

func TestClientConcurrentUse(t *testing.T) {
	// One client, many goroutines, a portal failing every third request:
	// exercised under -race this validates the lastRequest lock, the
	// jitter RNG lock, and the server's atomic FailEveryN.
	srv, c := startPortal(t)
	srv.FailEveryN.Store(3)
	// Under concurrency every third request globally fails, so any one
	// request's retries keep a ~1/3 failure chance each attempt; give
	// them enough attempts that 64 requests all but surely succeed.
	c.MaxRetries = 12
	c.RetryBackoff = time.Millisecond
	c.MinInterval = 100 * time.Microsecond
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := c.FetchDetailHTML(context.Background(), "WQNL001"); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent fetch failed: %v", err)
	}
}

func TestMinIntervalSpacesConcurrentRequests(t *testing.T) {
	_, c := startPortal(t)
	c.MinInterval = 10 * time.Millisecond
	const requests = 8
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.FetchDetailHTML(context.Background(), "WQNL001")
		}()
	}
	wg.Wait()
	// 8 requests spaced 10ms apart need >= 70ms regardless of which
	// goroutine issues them.
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Errorf("%d concurrent requests took %v, want >= 70ms", requests, elapsed)
	}
}
