package scrape

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
	"hftnetview/internal/ulsserver"
)

// corpus is the shared synthetic database (generation is deterministic
// but not free, so share it across tests).
var corpus *uls.Database

func corpusDB(t *testing.T) *uls.Database {
	t.Helper()
	if corpus == nil {
		db, err := synth.Generate()
		if err != nil {
			t.Fatalf("synth.Generate: %v", err)
		}
		corpus = db
	}
	return corpus
}

func startPortal(t *testing.T) (*ulsserver.Server, *Client) {
	t.Helper()
	srv := ulsserver.New(corpusDB(t))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestGeographicSearchPaged(t *testing.T) {
	_, c := startPortal(t)
	res, err := c.GeographicSearch(context.Background(),
		sites.CME.Location.Lat, sites.CME.Location.Lon, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every generated licensee (57) has sites near CME.
	if len(res) < 57 {
		t.Errorf("geographic matches = %d, want >= 57", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Licensee] = true
	}
	if len(names) != 57 {
		t.Errorf("distinct licensees = %d, want 57", len(names))
	}
}

func TestSiteSearchPagesThroughAllResults(t *testing.T) {
	_, c := startPortal(t)
	res, err := c.SiteSearch(context.Background(), uls.ServiceMG, uls.ClassFXO)
	if err != nil {
		t.Fatal(err)
	}
	// The full corpus (>1000 licenses) far exceeds one 200-row page, so
	// this exercises the pager; the count must match the ground truth.
	want := len(uls.FilterService(corpusDB(t).All(), uls.ServiceMG, uls.ClassFXO))
	if len(res) != want {
		t.Fatalf("site search = %d results, want %d", len(res), want)
	}
	if want <= 200 {
		t.Fatalf("corpus too small to exercise paging: %d", want)
	}
	seen := map[string]bool{}
	for _, r := range res {
		if seen[r.CallSign] {
			t.Fatalf("duplicate %s across pages", r.CallSign)
		}
		seen[r.CallSign] = true
	}
}

func TestLicenseDetailRoundTrip(t *testing.T) {
	_, c := startPortal(t)
	db := corpusDB(t)
	// Scrape a handful of licenses and compare to ground truth.
	count := 0
	for _, want := range db.All() {
		if count >= 25 {
			break
		}
		count++
		page, err := c.FetchDetailHTML(context.Background(), want.CallSign)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseDetailHTML(page)
		if err != nil {
			t.Fatalf("%s: %v", want.CallSign, err)
		}
		if got.CallSign != want.CallSign || got.Licensee != want.Licensee ||
			got.FRN != want.FRN || got.Status != want.Status {
			t.Errorf("%s: header mismatch: %+v", want.CallSign, got)
		}
		if got.Grant != want.Grant || got.Cancellation != want.Cancellation {
			t.Errorf("%s: dates mismatch", want.CallSign)
		}
		if len(got.Locations) != len(want.Locations) {
			t.Fatalf("%s: %d locations, want %d", want.CallSign,
				len(got.Locations), len(want.Locations))
		}
		for i := range got.Locations {
			if geo.Distance(got.Locations[i].Point, want.Locations[i].Point) > 5 {
				t.Errorf("%s location %d moved in scrape round trip", want.CallSign, i)
			}
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("%s: %d paths, want %d", want.CallSign, len(got.Paths), len(want.Paths))
		}
		if len(got.Paths[0].FrequenciesMHz) != len(want.Paths[0].FrequenciesMHz) {
			t.Errorf("%s: frequency count mismatch", want.CallSign)
		}
		// Antenna engineering fields survive the portal round trip at
		// the page's 0.1 precision.
		for i := range got.Paths {
			if d := got.Paths[i].TXAzimuthDeg - want.Paths[i].TXAzimuthDeg; d > 0.06 || d < -0.06 {
				t.Errorf("%s path %d: TX azimuth %.2f vs %.2f", want.CallSign, i,
					got.Paths[i].TXAzimuthDeg, want.Paths[i].TXAzimuthDeg)
			}
			if d := got.Paths[i].AntennaGainDBi - want.Paths[i].AntennaGainDBi; d > 0.06 || d < -0.06 {
				t.Errorf("%s path %d: gain mismatch", want.CallSign, i)
			}
		}
		if got.ContactEmail != want.ContactEmail {
			t.Errorf("%s: contact email %q vs %q", want.CallSign,
				got.ContactEmail, want.ContactEmail)
		}
	}
}

func TestPipelineFunnel(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline scrape is slow in -short mode")
	}
	_, c := startPortal(t)
	db, funnel, err := Run(context.Background(), c, DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	// §2.2: 57 candidates, 29 shortlisted.
	if funnel.Candidates != 57 {
		t.Errorf("candidates = %d, want 57", funnel.Candidates)
	}
	if funnel.Shortlisted != 29 {
		t.Errorf("shortlisted = %d, want 29", funnel.Shortlisted)
	}
	if funnel.LicensesScraped != db.Len() {
		t.Errorf("scraped %d but stored %d", funnel.LicensesScraped, db.Len())
	}
	// Every shortlisted licensee's full filing set must be present.
	truth := corpusDB(t)
	for _, name := range funnel.ShortlistedNames {
		if got, want := len(db.ByLicensee(name)), len(truth.ByLicensee(name)); got != want {
			t.Errorf("%s: scraped %d licenses, want %d", name, got, want)
		}
	}
	// The ten HFT networks are all shortlisted.
	for _, spec := range synth.HFTNetworks() {
		found := false
		for _, n := range funnel.ShortlistedNames {
			if n == spec.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from shortlist", spec.Name)
		}
	}
}

func TestPipelineRecordsCorruptDetailPage(t *testing.T) {
	// A portal that persistently serves one corrupted detail page
	// mid-pipeline: the pipeline must finish, record the failure with
	// the license's call sign and a "parse" class, and leave only that
	// license out of the database.
	inner := ulsserver.New(corpusDB(t))
	corrupt := "WQNL001"
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/"+corrupt) {
			w.Header().Set("Content-Type", "text/html")
			w.Write([]byte("<html><body><tr><td>Call Sign</td><td>WQNL001</td></tr></body></html>"))
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	db, funnel, err := Run(context.Background(), c, DefaultPipelineOptions())
	if err != nil {
		t.Fatalf("pipeline aborted on a single corrupt page: %v", err)
	}
	if len(funnel.Failed) != 1 {
		t.Fatalf("Failed = %+v, want exactly one entry", funnel.Failed)
	}
	f := funnel.Failed[0]
	if f.CallSign != corrupt || f.Class != "parse" {
		t.Errorf("failure = %+v, want call sign %s class parse", f, corrupt)
	}
	if _, ok := db.ByCallSign(corrupt); ok {
		t.Errorf("corrupt license %s stored anyway", corrupt)
	}
	if funnel.LicensesScraped != db.Len() {
		t.Errorf("scraped %d but stored %d", funnel.LicensesScraped, db.Len())
	}
}

func TestPipelineReportsPartialFunnelWhenPortalDies(t *testing.T) {
	// The portal serves the geographic search, then dies: Run must
	// return an error AND a funnel that still carries the completed
	// stage — not a zero value — so operators can see how far it got.
	inner := ulsserver.New(corpusDB(t))
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/site") {
			http.Error(w, "portal died", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 1
	c.RetryBackoff = time.Millisecond
	db, funnel, err := Run(context.Background(), c, DefaultPipelineOptions())
	if err == nil {
		t.Fatal("pipeline succeeded against a dying portal")
	}
	if db != nil {
		t.Error("dying portal produced a database")
	}
	if funnel.GeographicMatches == 0 {
		t.Error("partial funnel lost GeographicMatches; got a zero value")
	}
	if funnel.Candidates != 0 || funnel.Shortlisted != 0 {
		t.Errorf("stages after the failure look complete: %+v", funnel)
	}
}

func TestPipelineRecordsFailedLicensee(t *testing.T) {
	// One licensee's enumeration fails persistently: the run finishes
	// without that licensee and names it in FailedLicensees.
	inner := ulsserver.New(corpusDB(t))
	broken := synth.PB // one of the ten HFT networks, normally shortlisted
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/licensee") &&
			r.URL.Query().Get("name") == broken {
			http.Error(w, "flaked", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.MaxRetries = 1
	c.RetryBackoff = time.Millisecond
	db, funnel, err := Run(context.Background(), c, DefaultPipelineOptions())
	if err != nil {
		t.Fatalf("pipeline aborted on one licensee: %v", err)
	}
	found := false
	for _, name := range funnel.FailedLicensees {
		if name == broken {
			found = true
		}
	}
	if !found {
		t.Errorf("FailedLicensees = %v, want %q recorded", funnel.FailedLicensees, broken)
	}
	if got := len(db.ByLicensee(broken)); got != 0 {
		t.Errorf("broken licensee still contributed %d licenses", got)
	}
	if funnel.Shortlisted != 28 { // 29 in the paper, minus the broken one
		t.Errorf("shortlisted = %d, want 28", funnel.Shortlisted)
	}
}

func TestRetryOn5xx(t *testing.T) {
	srv, c := startPortal(t)
	srv.FailEveryN.Store(3) // every third request fails
	c.RetryBackoff = time.Millisecond
	// With retries, repeated searches must all succeed.
	for i := 0; i < 5; i++ {
		if _, err := c.SiteSearch(context.Background(), uls.ServiceMG, uls.ClassFXO); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	_, c := startPortal(t)
	_, err := c.FetchDetailHTML(context.Background(), "WQZZ999")
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != 404 {
		t.Fatalf("err = %v, want 404 HTTPError", err)
	}
}

func TestContextCancellation(t *testing.T) {
	_, c := startPortal(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.GeographicSearch(ctx, 41.76, -88.20, 10); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestMinIntervalRateLimit(t *testing.T) {
	_, c := startPortal(t)
	c.MinInterval = 30 * time.Millisecond
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := c.FetchDetailHTML(context.Background(), "WQNL001"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("3 requests took %v, want >= 60ms with 30ms spacing", elapsed)
	}
}

func TestParseDetailHTMLErrors(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"empty", ""},
		{"no rows", "<html><body>nothing</body></html>"},
		{"bad location row", `<table><tr><td>Call Sign</td><td>WQXX001</td></tr>
			<tr><td>Licensee</td><td>X</td></tr>
			<tr><td>Grant Date</td><td>06/01/2015</td></tr>
			<tr><th>Loc</th><th>Latitude</th><th>Longitude</th><th>Ground Elev (m)</th><th>Height (m)</th></tr>
			<tr><td>1</td><td>garbage</td><td>88-12-00.0 W</td><td>200.0</td><td>90.0</td></tr></table>`},
		{"bad date", `<table><tr><td>Call Sign</td><td>WQXX001</td></tr>
			<tr><td>Grant Date</td><td>13/45/2015</td></tr></table>`},
		{"invalid license", `<table><tr><td>Call Sign</td><td>WQXX001</td></tr></table>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseDetailHTML([]byte(c.page)); err == nil {
				t.Error("ParseDetailHTML succeeded, want error")
			}
		})
	}
}

func TestHTMLUnescape(t *testing.T) {
	in := "Alpha &amp; Sons &lt;HFT&gt; &#34;quoted&#34; &#39;q&#39;"
	want := `Alpha & Sons <HFT> "quoted" 'q'`
	if got := htmlUnescape(in); got != want {
		t.Errorf("htmlUnescape = %q, want %q", got, want)
	}
}

func TestScrapedNetworkMatchesDirectReconstruction(t *testing.T) {
	// End-to-end §2 check: a database built by scraping the portal must
	// be semantically identical to the ground-truth database for a
	// licensee (same filings, same geometry within DMS resolution).
	_, c := startPortal(t)
	truth := corpusDB(t)
	name := synth.PB // smallest HFT network: fast to scrape fully
	all, err := c.LicenseeSearch(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(truth.ByLicensee(name)) {
		t.Fatalf("licensee search found %d, want %d", len(all), len(truth.ByLicensee(name)))
	}
	db := uls.NewDatabase()
	for _, m := range all {
		page, err := c.FetchDetailHTML(context.Background(), m.CallSign)
		if err != nil {
			t.Fatal(err)
		}
		l, err := ParseDetailHTML(page)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	date := uls.NewDate(2020, time.April, 1)
	gotLinks := db.ActiveLinks(name, date)
	wantLinks := truth.ActiveLinks(name, date)
	if len(gotLinks) != len(wantLinks) {
		t.Fatalf("active links = %d, want %d", len(gotLinks), len(wantLinks))
	}
	if !strings.HasPrefix(gotLinks[0].CallSign, "WQPB") {
		t.Errorf("unexpected call sign prefix: %s", gotLinks[0].CallSign)
	}
}
