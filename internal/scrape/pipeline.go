package scrape

import (
	"context"
	"fmt"
	"sort"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// PipelineOptions parameterizes the §2.2 discovery funnel.
type PipelineOptions struct {
	// Center and RadiusKM define the geographic seed search (the paper
	// uses 10 km around the CME data center).
	CenterLat, CenterLon float64
	RadiusKM             float64
	// Service and Class filter candidates (MG / FXO in the paper).
	Service, Class string
	// MinFilings is the shortlist cutoff: licensees with fewer total
	// filings cannot span the ~1,100 km corridor with ≤100 km hops
	// (11 in the paper).
	MinFilings int
}

// DefaultPipelineOptions returns the paper's parameters.
func DefaultPipelineOptions() PipelineOptions {
	return PipelineOptions{
		CenterLat:  sites.CME.Location.Lat,
		CenterLon:  sites.CME.Location.Lon,
		RadiusKM:   10,
		Service:    uls.ServiceMG,
		Class:      uls.ClassFXO,
		MinFilings: 11,
	}
}

// Funnel reports the §2.2 discovery statistics.
type Funnel struct {
	// GeographicMatches is the number of licenses within the seed
	// radius.
	GeographicMatches int
	// Candidates is the number of distinct licensees after the
	// service/class filter (57 in the paper).
	Candidates int
	// Shortlisted is the number of candidates meeting MinFilings (29 in
	// the paper).
	Shortlisted int
	// LicensesScraped is the number of detail pages fetched and parsed.
	LicensesScraped int
	// ShortlistedNames lists the shortlisted licensees, sorted.
	ShortlistedNames []string
}

// Run executes the full §2.2 pipeline against the portal: geographic
// seed search, service/class candidate filter, per-licensee license
// enumeration, shortlist cutoff, and detail scraping of every
// shortlisted license into a fresh database.
func Run(ctx context.Context, c *Client, opts PipelineOptions) (*uls.Database, Funnel, error) {
	var funnel Funnel

	// 1. Geographic seed: everything licensed near the western anchor.
	nearby, err := c.GeographicSearch(ctx, opts.CenterLat, opts.CenterLon, opts.RadiusKM)
	if err != nil {
		return nil, funnel, fmt.Errorf("geographic search: %w", err)
	}
	funnel.GeographicMatches = len(nearby)

	// 2. Service/class filter via the site-based search; intersect by
	// call sign.
	siteMatches, err := c.SiteSearch(ctx, opts.Service, opts.Class)
	if err != nil {
		return nil, funnel, fmt.Errorf("site search: %w", err)
	}
	inService := make(map[string]bool, len(siteMatches))
	for _, m := range siteMatches {
		inService[m.CallSign] = true
	}
	candidates := make(map[string]bool)
	for _, m := range nearby {
		if inService[m.CallSign] {
			candidates[m.Licensee] = true
		}
	}
	funnel.Candidates = len(candidates)

	// 3. Shortlist: enumerate each candidate's full filing list and
	// apply the MinFilings cutoff.
	var shortlisted []string
	licensesByName := make(map[string][]SearchResult)
	for name := range candidates {
		all, err := c.LicenseeSearch(ctx, name)
		if err != nil {
			return nil, funnel, fmt.Errorf("licensee search %q: %w", name, err)
		}
		if len(all) >= opts.MinFilings {
			shortlisted = append(shortlisted, name)
			licensesByName[name] = all
		}
	}
	sort.Strings(shortlisted)
	funnel.Shortlisted = len(shortlisted)
	funnel.ShortlistedNames = shortlisted

	// 4. Scrape every shortlisted license's detail page.
	db := uls.NewDatabase()
	for _, name := range shortlisted {
		for _, m := range licensesByName[name] {
			page, err := c.FetchDetailHTML(ctx, m.CallSign)
			if err != nil {
				return nil, funnel, fmt.Errorf("detail %s: %w", m.CallSign, err)
			}
			l, err := ParseDetailHTML(page)
			if err != nil {
				return nil, funnel, fmt.Errorf("parsing %s: %w", m.CallSign, err)
			}
			if err := db.Add(l); err != nil {
				return nil, funnel, fmt.Errorf("storing %s: %w", m.CallSign, err)
			}
			funnel.LicensesScraped++
		}
	}
	return db, funnel, nil
}
