package scrape

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// PipelineOptions parameterizes the §2.2 discovery funnel.
type PipelineOptions struct {
	// Center and RadiusKM define the geographic seed search (the paper
	// uses 10 km around the CME data center).
	CenterLat, CenterLon float64
	RadiusKM             float64
	// Service and Class filter candidates (MG / FXO in the paper).
	Service, Class string
	// MinFilings is the shortlist cutoff: licensees with fewer total
	// filings cannot span the ~1,100 km corridor with ≤100 km hops
	// (11 in the paper).
	MinFilings int
	// Workers bounds the concurrent detail-page fetches (default 4).
	Workers int
	// CheckpointPath, when set, appends a JSON journal of completed work
	// so an interrupted run can resume where it left off. The journal
	// records the portal and funnel parameters; resuming with different
	// ones fails with ErrCheckpointMismatch.
	CheckpointPath string
}

// DefaultPipelineOptions returns the paper's parameters.
func DefaultPipelineOptions() PipelineOptions {
	return PipelineOptions{
		CenterLat:  sites.CME.Location.Lat,
		CenterLon:  sites.CME.Location.Lon,
		RadiusKM:   10,
		Service:    uls.ServiceMG,
		Class:      uls.ClassFXO,
		MinFilings: 11,
		Workers:    4,
	}
}

// DetailFailure records one license whose detail page could not be
// scraped after the client's full retry schedule.
type DetailFailure struct {
	// CallSign names the license.
	CallSign string
	// Class is the failure class: "http_NNN" for a terminal status,
	// "parse" for an unparseable page, "malformed" for an undecodable
	// body, "budget" for an exhausted retry budget, "store" for a
	// database rejection, or "transport" for connection-level errors.
	Class string
	// Err is the final error message.
	Err string
}

// Funnel reports the §2.2 discovery statistics.
type Funnel struct {
	// GeographicMatches is the number of licenses within the seed
	// radius.
	GeographicMatches int
	// Candidates is the number of distinct licensees after the
	// service/class filter (57 in the paper).
	Candidates int
	// Shortlisted is the number of candidates meeting MinFilings (29 in
	// the paper).
	Shortlisted int
	// LicensesScraped is the number of detail pages fetched and parsed
	// by this run (resumed licenses are counted separately).
	LicensesScraped int
	// ResumedLicenses is the number of licenses restored from the
	// checkpoint journal instead of scraped.
	ResumedLicenses int
	// CheckpointSkipped is the number of corrupt journal lines the
	// resume ignored (their call signs are simply re-scraped).
	CheckpointSkipped int
	// ShortlistedNames lists the shortlisted licensees, sorted.
	ShortlistedNames []string
	// Failed lists licenses whose detail pages were abandoned after
	// retries; the run carries on without them rather than aborting.
	Failed []DetailFailure
	// FailedLicensees lists candidates whose filing enumeration failed;
	// their licenses are absent from the result.
	FailedLicensees []string
}

// errorClass buckets an error for DetailFailure.Class.
func errorClass(err error) string {
	var he *HTTPError
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.Is(err, ErrBudgetExhausted):
		return "budget"
	case errors.As(err, &he):
		return fmt.Sprintf("http_%d", he.StatusCode)
	default:
		var me *MalformedResponseError
		if errors.As(err, &me) {
			return "malformed"
		}
		return "transport"
	}
}

// detailTask is one planned detail-page fetch.
type detailTask struct {
	callSign string
}

// detailResult is a detailTask's outcome: exactly one field is set.
type detailResult struct {
	license *uls.License
	failure *DetailFailure
}

// Run executes the full §2.2 pipeline against the portal: geographic
// seed search, service/class candidate filter, per-licensee license
// enumeration, shortlist cutoff, and detail scraping of every
// shortlisted license into a fresh database.
//
// Run is built for flaky portals: individual detail-page failures are
// recorded in the Funnel and do not abort the run; licensee
// enumerations that fail are recorded in Funnel.FailedLicensees; and
// with PipelineOptions.CheckpointPath set, completed work is journaled
// so an interrupted run resumes instead of restarting. Run returns an
// error only for failures that invalidate the whole funnel: a failed
// geographic or site search, a cancelled context, or an unusable
// checkpoint. Even then the returned Funnel carries whatever stages
// completed, so callers can report partial progress.
func Run(ctx context.Context, c *Client, opts PipelineOptions) (*uls.Database, Funnel, error) {
	var funnel Funnel

	// Open the checkpoint journal first: a resumable run may not need
	// the search phases at all.
	var cp *checkpoint
	var resumed checkpointState
	if opts.CheckpointPath != "" {
		var err error
		cp, resumed, err = openCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, funnel, err
		}
		defer cp.close()
		funnel.CheckpointSkipped = resumed.skipped
	}

	key := makePlanKey(c.BaseURL, opts)
	var licensesByName map[string][]SearchResult
	if resumed.plan != nil {
		if *resumed.plan.Options != key {
			return nil, funnel, fmt.Errorf("%w: journal is for portal %s (%s/%s, %.0f km, >=%d filings)",
				ErrCheckpointMismatch, resumed.plan.Options.Portal,
				resumed.plan.Options.Service, resumed.plan.Options.Class,
				resumed.plan.Options.RadiusKM, resumed.plan.Options.MinFilings)
		}
		funnel.GeographicMatches = resumed.plan.GeographicMatches
		funnel.Candidates = resumed.plan.Candidates
		funnel.ShortlistedNames = resumed.plan.Shortlisted
		funnel.Shortlisted = len(resumed.plan.Shortlisted)
		licensesByName = resumed.plan.LicensesByName
	} else {
		var err error
		licensesByName, err = runSearches(ctx, c, opts, &funnel)
		if err != nil {
			return nil, funnel, err
		}
		// Journal the plan only when the search phase is complete: a
		// plan missing failed licensees must not become permanent.
		if cp != nil && len(funnel.FailedLicensees) == 0 {
			if err := cp.writePlan(key, funnel, licensesByName); err != nil {
				return nil, funnel, err
			}
		}
	}

	// Plan the detail fetches in deterministic order, splitting off work
	// the journal already holds.
	var tasks []detailTask
	for _, name := range funnel.ShortlistedNames {
		for _, m := range licensesByName[name] {
			if _, done := resumed.completed[m.CallSign]; done {
				funnel.ResumedLicenses++
				continue
			}
			tasks = append(tasks, detailTask{callSign: m.CallSign})
		}
	}

	results := scrapeDetails(ctx, c, opts, cp, tasks)

	// Assemble the database: journaled licenses first, then this run's,
	// all in plan order. WriteBulk sorts by call sign, so the on-disk
	// corpus is independent of fetch interleaving anyway.
	db := uls.NewDatabase()
	for _, name := range funnel.ShortlistedNames {
		for _, m := range licensesByName[name] {
			if l, done := resumed.completed[m.CallSign]; done {
				if err := db.Add(l); err != nil {
					return nil, funnel, fmt.Errorf("scrape: restoring %s from checkpoint: %w", m.CallSign, err)
				}
			}
		}
	}
	for i, r := range results {
		switch {
		case r.license != nil:
			if err := db.Add(r.license); err != nil {
				f := DetailFailure{CallSign: tasks[i].callSign, Class: "store", Err: err.Error()}
				funnel.Failed = append(funnel.Failed, f)
				if cp != nil {
					if jerr := cp.writeFailure(f); jerr != nil {
						return nil, funnel, jerr
					}
				}
				continue
			}
			funnel.LicensesScraped++
		case r.failure != nil:
			funnel.Failed = append(funnel.Failed, *r.failure)
			if cp != nil {
				if jerr := cp.writeFailure(*r.failure); jerr != nil {
					return nil, funnel, jerr
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// Interrupted mid-scrape: the journal holds the completed part;
		// report partial progress alongside the cancellation.
		return nil, funnel, err
	}
	return db, funnel, nil
}

// runSearches executes funnel stages 1–3 (geographic seed,
// service/class filter, per-licensee enumeration with the shortlist
// cutoff), filling the funnel as it goes.
func runSearches(ctx context.Context, c *Client, opts PipelineOptions, funnel *Funnel) (map[string][]SearchResult, error) {
	// 1. Geographic seed: everything licensed near the western anchor.
	nearby, err := c.GeographicSearch(ctx, opts.CenterLat, opts.CenterLon, opts.RadiusKM)
	if err != nil {
		return nil, fmt.Errorf("geographic search: %w", err)
	}
	funnel.GeographicMatches = len(nearby)

	// 2. Service/class filter via the site-based search; intersect by
	// call sign.
	siteMatches, err := c.SiteSearch(ctx, opts.Service, opts.Class)
	if err != nil {
		return nil, fmt.Errorf("site search: %w", err)
	}
	inService := make(map[string]bool, len(siteMatches))
	for _, m := range siteMatches {
		inService[m.CallSign] = true
	}
	candidates := make(map[string]bool)
	for _, m := range nearby {
		if inService[m.CallSign] {
			candidates[m.Licensee] = true
		}
	}
	funnel.Candidates = len(candidates)

	// 3. Shortlist: enumerate each candidate's full filing list and
	// apply the MinFilings cutoff. One candidate's failure costs that
	// candidate, not the run — unless the context itself died.
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	var shortlisted []string
	licensesByName := make(map[string][]SearchResult)
	for _, name := range names {
		all, err := c.LicenseeSearch(ctx, name)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("licensee search %q: %w", name, err)
			}
			funnel.FailedLicensees = append(funnel.FailedLicensees, name)
			continue
		}
		if len(all) >= opts.MinFilings {
			shortlisted = append(shortlisted, name)
			licensesByName[name] = all
		}
	}
	sort.Strings(shortlisted)
	funnel.Shortlisted = len(shortlisted)
	funnel.ShortlistedNames = shortlisted
	return licensesByName, nil
}

// scrapeDetails fetches and parses the planned detail pages with a
// bounded worker pool. Each completed license is journaled immediately,
// so an interruption preserves everything already fetched. The returned
// slice is indexed like tasks; cancelled tasks are left zero.
func scrapeDetails(ctx context.Context, c *Client, opts PipelineOptions, cp *checkpoint, tasks []detailTask) []detailResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]detailResult, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				results[i] = fetchDetail(ctx, c, cp, tasks[i].callSign)
			}
		}()
	}
feeding:
	for i := range tasks {
		select {
		case feed <- i:
		case <-ctx.Done():
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	return results
}

// fetchDetail retrieves and parses one detail page. Transport and
// status failures are retried inside Client.get; an unparseable page
// (e.g. a truncated or garbage body served with a 200) is retried here
// under the same MaxRetries, because the next copy is usually clean.
func fetchDetail(ctx context.Context, c *Client, cp *checkpoint, callSign string) detailResult {
	attempts := 1 + max(c.MaxRetries, 0)
	var lastErr error
	var lastClass string
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			return detailResult{} // cancelled: not a portal failure
		}
		page, err := c.FetchDetailHTML(ctx, callSign)
		if err != nil {
			if ctx.Err() != nil {
				return detailResult{}
			}
			lastErr, lastClass = err, errorClass(err)
			var he *HTTPError
			if errors.As(err, &he) && he.StatusCode < 500 && he.StatusCode != 429 {
				break // terminal status: the page is simply not there
			}
			continue
		}
		l, err := ParseDetailHTML(page)
		if err != nil {
			lastErr, lastClass = err, "parse"
			continue
		}
		if cp != nil {
			if err := cp.writeLicense(l); err != nil {
				return detailResult{failure: &DetailFailure{CallSign: callSign, Class: "journal", Err: err.Error()}}
			}
		}
		return detailResult{license: l}
	}
	return detailResult{failure: &DetailFailure{CallSign: callSign, Class: lastClass, Err: lastErr.Error()}}
}
