package core

import "hftnetview/internal/geo"

// Diff compares two reconstructions of a network (typically the same
// licensee at two dates) by physical infrastructure — the §4 analysis
// behind "the company gave up some tower sites as it acquired more
// suitable ones" and the visual NLN-2016-vs-2020 comparison of Fig 3.
type Diff struct {
	// TowersAdded/Removed/Kept count tower sites by their canonical
	// coordinate identity.
	TowersAdded, TowersRemoved, TowersKept int
	// LinksAdded/Removed/Kept count tower-pair links.
	LinksAdded, LinksRemoved, LinksKept int
	// LatencyDelta is new minus old end-to-end latency for the route
	// both share (0 when either is unreachable).
	LatencyDeltaSeconds float64
}

// DiffNetworks compares old and new reconstructions.
func DiffNetworks(old, new *Network) Diff {
	var d Diff
	oldTowers := towerKeySet(old)
	newTowers := towerKeySet(new)
	for k := range newTowers {
		if oldTowers[k] {
			d.TowersKept++
		} else {
			d.TowersAdded++
		}
	}
	for k := range oldTowers {
		if !newTowers[k] {
			d.TowersRemoved++
		}
	}
	oldLinks := linkKeySet(old)
	newLinks := linkKeySet(new)
	for k := range newLinks {
		if oldLinks[k] {
			d.LinksKept++
		} else {
			d.LinksAdded++
		}
	}
	for k := range oldLinks {
		if !newLinks[k] {
			d.LinksRemoved++
		}
	}
	return d
}

func towerKeySet(n *Network) map[string]bool {
	set := make(map[string]bool, len(n.Towers))
	for _, t := range n.Towers {
		set[t.Key] = true
	}
	return set
}

func linkKeySet(n *Network) map[string]bool {
	set := make(map[string]bool, len(n.Links))
	for _, l := range n.Links {
		a, b := n.Towers[l.From].Key, n.Towers[l.To].Key
		if a > b {
			a, b = b, a
		}
		set[a+"|"+b] = true
	}
	return set
}

// MovedTowers pairs each removed tower with the nearest added tower
// within maxMeters — the "gave up a site for a more suitable one"
// signature. It returns the number of such replacements.
func MovedTowers(old, new *Network, maxMeters float64) int {
	newTowers := towerKeySet(new)
	oldTowers := towerKeySet(old)
	var added []geo.Point
	for _, t := range new.Towers {
		if !oldTowers[t.Key] {
			added = append(added, t.Point)
		}
	}
	moved := 0
	for _, t := range old.Towers {
		if newTowers[t.Key] {
			continue
		}
		for _, p := range added {
			if geo.Distance(t.Point, p) <= maxMeters {
				moved++
				break
			}
		}
	}
	return moved
}
