package core

import (
	"sort"

	"hftnetview/internal/units"
)

// §3 caveat, made computable: "the per-tower overheads not accounted for
// in our study could change the rankings... If both NLN and JM were
// using the same radios, and the per-tower added latency was higher than
// 1.4 µs, JM would offer lower end-end latency." This file ranks
// networks under a per-tower regeneration overhead and finds the
// crossover points.

// AdjustedSummary is a NetworkSummary re-scored with a per-tower
// overhead.
type AdjustedSummary struct {
	NetworkSummary
	// PerTower is the overhead applied per tower on the route.
	PerTower units.Latency
	// Adjusted is Latency + PerTower × TowerCount.
	Adjusted units.Latency
}

// RankWithPerTowerOverhead re-ranks Table 1 rows under a per-tower
// overhead: propagation latency plus overhead × tower count, as the
// paper's §3 thought experiment does.
func RankWithPerTowerOverhead(rows []NetworkSummary, perTower units.Latency) []AdjustedSummary {
	out := make([]AdjustedSummary, 0, len(rows))
	for _, r := range rows {
		out = append(out, AdjustedSummary{
			NetworkSummary: r,
			PerTower:       perTower,
			Adjusted:       r.Latency + units.Latency(perTower.Seconds()*float64(r.TowerCount)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Adjusted != out[j].Adjusted {
			return out[i].Adjusted < out[j].Adjusted
		}
		return out[i].Licensee < out[j].Licensee
	})
	return out
}

// CrossoverOverhead returns the per-tower overhead at which b's adjusted
// latency equals a's: above it, b is faster. ok is false when no
// positive crossover exists (b never overtakes, or is already ahead and
// has fewer towers).
func CrossoverOverhead(a, b NetworkSummary) (units.Latency, bool) {
	// a.Latency + o·a.Towers = b.Latency + o·b.Towers
	// o = (b.Latency − a.Latency) / (a.Towers − b.Towers)
	dTowers := a.TowerCount - b.TowerCount
	if dTowers == 0 {
		return 0, false
	}
	o := (b.Latency.Seconds() - a.Latency.Seconds()) / float64(dTowers)
	if o <= 0 {
		return 0, false
	}
	return units.Latency(o), true
}

// LeaderByOverhead sweeps per-tower overheads and reports the leader at
// each point, collapsing consecutive identical leaders into ranges. The
// sweep is over the crossover points implied by the rows themselves, so
// no leader change can be missed between sample points.
type LeaderRange struct {
	// FromOverhead is the inclusive lower edge of the range; the first
	// range starts at 0.
	FromOverhead units.Latency
	Leader       string
}

// LeaderByOverhead computes the exact leader timeline as the per-tower
// overhead grows from 0.
func LeaderByOverhead(rows []NetworkSummary) []LeaderRange {
	if len(rows) == 0 {
		return nil
	}
	// Candidate breakpoints: all pairwise crossovers.
	breaks := []units.Latency{0}
	for i := range rows {
		for j := range rows {
			if i == j {
				continue
			}
			if o, ok := CrossoverOverhead(rows[i], rows[j]); ok {
				breaks = append(breaks, o)
			}
		}
	}
	sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })

	var out []LeaderRange
	for _, o := range breaks {
		// Evaluate just past the breakpoint to get the post-crossover
		// leader.
		probe := o + units.Latency(1e-12)
		leader := RankWithPerTowerOverhead(rows, probe)[0].Licensee
		if len(out) > 0 && out[len(out)-1].Leader == leader {
			continue
		}
		out = append(out, LeaderRange{FromOverhead: o, Leader: leader})
	}
	return out
}
