package core

import (
	"testing"

	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// corpusForCore lazily generates the shared synthetic corpus for
// corpus-level core tests.
var sharedCorpus *uls.Database

func corpusForCore(t *testing.T) *uls.Database {
	t.Helper()
	if sharedCorpus == nil {
		db, err := synth.Generate()
		if err != nil {
			t.Fatal(err)
		}
		sharedCorpus = db
	}
	return sharedCorpus
}

func reconstructCorpus(t *testing.T, db *uls.Database, name string, date uls.Date) *Network {
	t.Helper()
	n, err := Reconstruct(db, name, date, sites.All, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestConnectedNetworksParallelDeterministic drives the concurrent
// Table-1 computation over the full corpus repeatedly (run with -race
// to exercise the read-only sharing of the database) and checks results
// are identical across runs and consistent with per-licensee
// reconstruction.
func TestConnectedNetworksParallelDeterministic(t *testing.T) {
	db, err := synth.Generate()
	if err != nil {
		t.Fatal(err)
	}
	date := uls.MustParseDate("04/01/2020")
	path := sites.Path{From: sites.CME, To: sites.NY4}
	opts := DefaultOptions()

	first, err := ConnectedNetworks(db, date, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 9 {
		t.Fatalf("connected = %d, want 9", len(first))
	}
	for run := 0; run < 3; run++ {
		again, err := ConnectedNetworks(db, date, path, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d rows vs %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i].Licensee != first[i].Licensee ||
				again[i].Latency != first[i].Latency ||
				again[i].APA != first[i].APA ||
				again[i].TowerCount != first[i].TowerCount {
				t.Fatalf("run %d row %d differs: %+v vs %+v",
					run, i, again[i], first[i])
			}
		}
	}

	// Spot-check one row against a direct reconstruction.
	n, err := Reconstruct(db, first[0].Licensee, date,
		[]sites.DataCenter{path.From, path.To}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := n.BestRoute(path)
	if !ok || r.Latency != first[0].Latency {
		t.Errorf("direct reconstruction disagrees: %v vs %v", r.Latency, first[0].Latency)
	}
}
