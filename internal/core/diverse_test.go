package core

import (
	"testing"

	"hftnetview/internal/uls"
)

func TestDiverseRoutesChain(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 12, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	routes := n.DiverseRoutes(pathNY4, 5)
	if len(routes) != 1 {
		t.Fatalf("chain diverse routes = %d, want exactly 1", len(routes))
	}
	best, _ := n.BestRoute(pathNY4)
	if routes[0].Latency != best.Latency {
		t.Errorf("first diverse route %v != best route %v", routes[0].Latency, best.Latency)
	}
}

func TestDiverseRoutesLadder(t *testing.T) {
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Ladder Net", 10, 3000, grant15, 11000, 6000)
	n := reconstructOrDie(t, db, "Ladder Net", date20)
	routes := n.DiverseRoutes(pathNY4, 4)
	if len(routes) != 4 {
		t.Fatalf("ladder diverse routes = %d, want 4", len(routes))
	}
	for i := 1; i < len(routes); i++ {
		if routes[i].Latency < routes[i-1].Latency {
			t.Errorf("routes not sorted: %v < %v", routes[i].Latency, routes[i-1].Latency)
		}
	}
	// Each alternate is a genuinely different route.
	seen := map[int]bool{}
	for i, r := range routes {
		key := r.TowerCount*1000 + r.HopCount()
		_ = key
		if i > 0 && routes[i].Latency == routes[0].Latency &&
			equalInts(routes[i].Towers, routes[0].Towers) {
			t.Errorf("route %d duplicates the best route", i)
		}
		seen[i] = true
	}
	// Alternates stay close: on a tight ladder the 4th route is within
	// 1% of the best.
	if routes[3].Latency.Seconds() > routes[0].Latency.Seconds()*1.01 {
		t.Errorf("4th route %v too far above best %v", routes[3].Latency, routes[0].Latency)
	}
}

func TestDiverseRoutesUnknownPath(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 8, grant15, uls.Date{}, 11000)
	n, err := Reconstruct(db, "Chain Net", date20, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if routes := n.DiverseRoutes(pathNY4, 3); routes != nil {
		t.Errorf("no data centers attached: routes = %d", len(routes))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
