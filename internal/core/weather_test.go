package core

import (
	"testing"

	"hftnetview/internal/geo"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

func TestRouteUnderStormDetour(t *testing.T) {
	// Ladder: 11 GHz geodesic rail (shortest) + 6 GHz offset rail.
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Storm Net", 25, 3000, grant15, 11000, 6000)
	n := reconstructOrDie(t, db, "Storm Net", date20)

	fair, ok := n.BestRoute(pathNY4)
	if !ok {
		t.Fatal("fair-weather route missing")
	}

	// A violent cell centered on the middle of the corridor fades the
	// long 11 GHz trunk links inside it but not the 6 GHz rail.
	mid := geo.Interpolate(sites.CME.Location, sites.NY4.Location, 0.5)
	storm := radio.Storm{Cells: []radio.Cell{{Center: mid, RadiusM: 60e3, RateMMH: 100}}}

	impact, err := n.RouteUnderStorm(pathNY4, storm, 40)
	if err != nil {
		t.Fatal(err)
	}
	if impact.LinksDown == 0 {
		t.Fatal("storm faded no links")
	}
	if !impact.Connected {
		t.Fatal("laddered network should survive the storm")
	}
	if impact.Route.Latency <= fair.Latency {
		t.Errorf("storm route latency %v not above fair-weather %v",
			impact.Route.Latency, fair.Latency)
	}
	if impact.FairWeather.Latency != fair.Latency {
		t.Errorf("FairWeather = %v, want %v", impact.FairWeather.Latency, fair.Latency)
	}

	// Network must be fully restored afterwards.
	after, ok := n.BestRoute(pathNY4)
	if !ok || after.Latency != fair.Latency {
		t.Errorf("network not restored after storm: %v vs %v", after.Latency, fair.Latency)
	}
}

func TestRouteUnderStormDisconnectsChain(t *testing.T) {
	// A pure 11 GHz chain has no alternates: a big enough cell cuts it.
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 25, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)

	mid := geo.Interpolate(sites.CME.Location, sites.NY4.Location, 0.5)
	storm := radio.Storm{Cells: []radio.Cell{{Center: mid, RadiusM: 60e3, RateMMH: 100}}}
	impact, err := n.RouteUnderStorm(pathNY4, storm, 40)
	if err != nil {
		t.Fatal(err)
	}
	if impact.Connected {
		t.Error("chain should be disconnected by a mid-corridor storm")
	}
	if impact.LinksDown == 0 {
		t.Error("no links faded")
	}
	// 6 GHz variant of the same chain survives the same storm.
	db6 := uls.NewDatabase()
	buildChainNetwork(t, db6, "LowBand Net", 25, grant15, uls.Date{}, 6004.5)
	n6 := reconstructOrDie(t, db6, "LowBand Net", date20)
	impact6, err := n6.RouteUnderStorm(pathNY4, storm, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !impact6.Connected {
		t.Error("6 GHz chain should survive the storm the 11 GHz chain lost")
	}
}

func TestRouteUnderStormNoStorm(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 10, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	impact, err := n.RouteUnderStorm(pathNY4, radio.Storm{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if impact.LinksDown != 0 || !impact.Connected {
		t.Errorf("clear weather impact = %+v", impact)
	}
	if impact.Route.Latency != impact.FairWeather.Latency {
		t.Error("clear-weather route should equal fair-weather route")
	}
}

func TestLinkFrequencySelection(t *testing.T) {
	l := Link{FrequenciesMHz: []float64{11245, 6004.5, 17845}}
	if got := linkFrequencyGHz(l); got != 6.0045 {
		t.Errorf("linkFrequencyGHz = %v, want lowest channel 6.0045", got)
	}
	if got := linkFrequencyGHz(Link{}); got != 11 {
		t.Errorf("default frequency = %v, want 11", got)
	}
}
