package core

import (
	"hftnetview/internal/graph"
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
)

// The paper speculates (§5) that a network like Webline Holdings, slower
// in fair weather, "may be faster at other times" thanks to shorter
// links, lower frequencies and more alternate paths. This file makes
// that testable: knock out links a storm would fade and re-run the
// lowest-latency route.

// StormImpact is the outcome of a weather scenario on one network path.
type StormImpact struct {
	// LinksDown is the number of microwave links faded out.
	LinksDown int
	// Connected reports whether an end-to-end route survived.
	Connected bool
	// Route is the surviving lowest-latency route (valid only when
	// Connected).
	Route Route
	// FairWeather is the no-storm route for comparison.
	FairWeather Route
}

// linkFrequencyGHz picks the carrier used for fade evaluation: the
// link's lowest assigned channel, since an operator rides out a fade on
// the most rain-robust channel available.
func linkFrequencyGHz(l Link) float64 {
	if len(l.FrequenciesMHz) == 0 {
		return 11 // conservative default for unlicensed test fixtures
	}
	min := l.FrequenciesMHz[0]
	for _, f := range l.FrequenciesMHz[1:] {
		if f < min {
			min = f
		}
	}
	return min / 1000
}

// RouteUnderStorm disables every microwave link whose rain attenuation
// under the storm exceeds marginDB (fiber tails are weatherproof), finds
// the best surviving route for the path, then restores the network.
func (n *Network) RouteUnderStorm(path sites.Path, storm radio.Storm, marginDB float64) (StormImpact, error) {
	impact := StormImpact{}
	if fair, ok := n.BestRoute(path); ok {
		impact.FairWeather = fair
	}
	var disabled []graph.EdgeID
	for eid, li := range n.mwEdge {
		l := n.Links[li]
		a := n.Towers[l.From].Point
		b := n.Towers[l.To].Point
		if storm.LinkDownUnderStorm(a, b, linkFrequencyGHz(l), marginDB) {
			n.g.SetDisabled(eid, true)
			disabled = append(disabled, eid)
		}
	}
	impact.LinksDown = len(disabled)
	if r, ok := n.BestRoute(path); ok {
		impact.Connected = true
		impact.Route = r
	}
	for _, eid := range disabled {
		n.g.SetDisabled(eid, false)
	}
	return impact, nil
}
