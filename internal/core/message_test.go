package core

import (
	"math"
	"testing"

	"hftnetview/internal/units"
)

func routeWithHops(latencyMS float64, hops int) Route {
	r := Route{Latency: units.Latency(latencyMS / 1000)}
	for i := 0; i < hops; i++ {
		r.LinkIndexes = append(r.LinkIndexes, i)
	}
	return r
}

func TestMessageLatencyTwoBits(t *testing.T) {
	// The paper's 2-bit trading update over 24 hops at 500 Mbps:
	// serialization is 4 ns/hop — utterly negligible against 1 µs regen.
	r := routeWithHops(3.96171, 24)
	radio := TypicalHFTRadio()
	got := MessageLatency(r, 2, radio)
	wantExtra := 24 * (1e-6 + 2/500e6)
	if math.Abs(got.Seconds()-(r.Latency.Seconds()+wantExtra)) > 1e-12 {
		t.Errorf("latency = %v", got)
	}
	// Serialization share is tiny.
	serOnly := MessageLatency(r, 2, RadioProfile{BandwidthBps: 500e6})
	if extra := serOnly.Sub(r.Latency).Microseconds(); extra > 0.2 {
		t.Errorf("2-bit serialization cost %v µs over 24 hops, want ≪ 1", extra)
	}
}

func TestMessageLatencyBigMessagesFlipRankings(t *testing.T) {
	// NLN (24 hops, 3.96171) vs JM (21 hops, 3.96597): at 2 bits NLN
	// wins; at a 1500-byte frame over 100 Mbps radios (120 µs/hop!) the
	// fewer-hop network wins.
	nln := NetworkSummary{Licensee: "NLN", Latency: units.Latency(0.00396171),
		TowerCount: 25, Route: routeWithHops(3.96171, 24)}
	jm := NetworkSummary{Licensee: "JM", Latency: units.Latency(0.00396597),
		TowerCount: 22, Route: routeWithHops(3.96597, 21)}
	rows := []NetworkSummary{nln, jm}

	fast := RankByMessageLatency(rows, 16, TypicalHFTRadio())
	if fast[0].Licensee != "NLN" {
		t.Errorf("small message leader = %s, want NLN", fast[0].Licensee)
	}
	slowRadio := RadioProfile{BandwidthBps: 100e6, RegenSeconds: 5e-6}
	big := RankByMessageLatency(rows, 1500*8, slowRadio)
	if big[0].Licensee != "JM" {
		t.Errorf("big message leader = %s, want JM (fewer hops)", big[0].Licensee)
	}
}

func TestMessageLatencyRegenCrossover(t *testing.T) {
	// Consistency with the §3 overhead analysis: at ~1.42 µs per hop
	// (≈ per tower), JM overtakes NLN.
	nln := routeWithHops(3.96171, 24)
	jm := routeWithHops(3.96597, 21)
	for _, regen := range []float64{1.0e-6, 1.3e-6} {
		radio := RadioProfile{RegenSeconds: regen}
		if MessageLatency(nln, 2, radio) >= MessageLatency(jm, 2, radio) {
			t.Errorf("at %.1f µs regen NLN should still lead", regen*1e6)
		}
	}
	for _, regen := range []float64{1.6e-6, 3e-6} {
		radio := RadioProfile{RegenSeconds: regen}
		if MessageLatency(jm, 2, radio) >= MessageLatency(nln, 2, radio) {
			t.Errorf("at %.1f µs regen JM should lead", regen*1e6)
		}
	}
}

func TestSerializationBudget(t *testing.T) {
	radio := TypicalHFTRadio()
	bits := SerializationBudget(radio, units.Latency(1e-6))
	if bits != 500 {
		t.Errorf("1 µs at 500 Mbps = %d bits, want 500", bits)
	}
	if SerializationBudget(RadioProfile{}, units.Latency(1e-6)) != 0 {
		t.Error("zero bandwidth should budget 0 bits")
	}
}
