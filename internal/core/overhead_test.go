package core

import (
	"math"
	"testing"

	"hftnetview/internal/units"
)

func mkSummary(name string, latencyMS float64, towers int) NetworkSummary {
	return NetworkSummary{
		Licensee:   name,
		Latency:    units.Latency(latencyMS / 1000),
		TowerCount: towers,
	}
}

// Paper values: NLN 3.96171 ms over 25 towers, JM 3.96597 ms over 22.
var (
	sumNLN = mkSummary("NLN", 3.96171, 25)
	sumJM  = mkSummary("JM", 3.96597, 22)
	sumSW  = mkSummary("SW", 4.44530, 74)
)

func TestCrossoverMatchesPaperClaim(t *testing.T) {
	// §3: "if the per-tower added latency was higher than 1.4 µs, JM
	// would offer lower end-end latency" than NLN.
	o, ok := CrossoverOverhead(sumNLN, sumJM)
	if !ok {
		t.Fatal("no crossover found")
	}
	if us := o.Microseconds(); math.Abs(us-1.42) > 0.05 {
		t.Errorf("NLN→JM crossover = %.3f µs, want ≈1.42", us)
	}
}

func TestCrossoverNoOvertake(t *testing.T) {
	// SW is slower AND has more towers: it never overtakes NLN.
	if _, ok := CrossoverOverhead(sumNLN, sumSW); ok {
		t.Error("SW should never overtake NLN")
	}
	// Equal tower counts: no crossover.
	if _, ok := CrossoverOverhead(sumNLN, mkSummary("X", 3.99, 25)); ok {
		t.Error("equal tower counts cannot cross")
	}
}

func TestRankWithPerTowerOverhead(t *testing.T) {
	rows := []NetworkSummary{sumNLN, sumJM, sumSW}

	at := func(us float64) string {
		perTower := units.Latency(us * 1e-6)
		return RankWithPerTowerOverhead(rows, perTower)[0].Licensee
	}
	if got := at(0); got != "NLN" {
		t.Errorf("leader at 0 = %s, want NLN", got)
	}
	if got := at(1.0); got != "NLN" {
		t.Errorf("leader at 1.0 µs = %s, want NLN", got)
	}
	if got := at(1.5); got != "JM" {
		t.Errorf("leader at 1.5 µs = %s, want JM", got)
	}
	if got := at(10); got != "JM" {
		t.Errorf("leader at 10 µs = %s, want JM", got)
	}

	// Adjusted values are computed correctly.
	adj := RankWithPerTowerOverhead(rows, units.Latency(2e-6))
	for _, a := range adj {
		want := a.Latency.Seconds() + 2e-6*float64(a.TowerCount)
		if math.Abs(a.Adjusted.Seconds()-want) > 1e-12 {
			t.Errorf("%s adjusted = %v, want %v", a.Licensee, a.Adjusted.Seconds(), want)
		}
	}
}

func TestLeaderByOverhead(t *testing.T) {
	rows := []NetworkSummary{sumNLN, sumJM, sumSW}
	ranges := LeaderByOverhead(rows)
	if len(ranges) != 2 {
		t.Fatalf("ranges = %+v, want NLN then JM", ranges)
	}
	if ranges[0].Leader != "NLN" || ranges[0].FromOverhead != 0 {
		t.Errorf("first range = %+v", ranges[0])
	}
	if ranges[1].Leader != "JM" {
		t.Errorf("second range = %+v", ranges[1])
	}
	if us := ranges[1].FromOverhead.Microseconds(); math.Abs(us-1.42) > 0.05 {
		t.Errorf("JM takeover at %.3f µs, want ≈1.42", us)
	}
}

func TestLeaderByOverheadEmpty(t *testing.T) {
	if got := LeaderByOverhead(nil); got != nil {
		t.Errorf("empty input: %+v", got)
	}
}
