package core

import (
	"runtime"
	"sort"
	"sync"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// NetworkSummary is one row of Table 1: a connected network's end-to-end
// latency, APA, and tower count on the given path at the given date.
type NetworkSummary struct {
	Licensee   string
	Latency    units.Latency
	APA        float64 // fraction in [0, 1]
	TowerCount int     // towers on the lowest-latency route
	HopCount   int     // microwave hops on the route
	Route      Route
}

// ConnectedNetworks reconstructs every licensee in the database at the
// given date and returns those with an end-to-end route on the path,
// ordered by increasing latency — the paper's Table 1.
//
// Licensees are reconstructed concurrently (the database is read-only
// here and reconstruction is independent per licensee); the result is
// deterministic regardless of scheduling.
func ConnectedNetworks(db *uls.Database, date uls.Date, path sites.Path, opts Options) ([]NetworkSummary, error) {
	licensees := db.Licensees()
	summaries := make([]*NetworkSummary, len(licensees))
	errs := make([]error, len(licensees))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(licensees) {
		workers = len(licensees)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				summaries[i], errs[i] = summarize(db, licensees[i], date, path, opts)
			}
		}()
	}
	for i := range licensees {
		work <- i
	}
	close(work)
	wg.Wait()

	var out []NetworkSummary
	for i := range licensees {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if summaries[i] != nil {
			out = append(out, *summaries[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency < out[j].Latency
		}
		return out[i].Licensee < out[j].Licensee
	})
	return out, nil
}

// summarize builds one licensee's Table 1 row, or nil when the licensee
// has no end-to-end route.
func summarize(db *uls.Database, licensee string, date uls.Date, path sites.Path, opts Options) (*NetworkSummary, error) {
	n, err := Reconstruct(db, licensee, date, []sites.DataCenter{path.From, path.To}, opts)
	if err != nil {
		return nil, err
	}
	r, ok := n.BestRoute(path)
	if !ok {
		return nil, nil
	}
	apa, _ := n.APA(path)
	return &NetworkSummary{
		Licensee:   licensee,
		Latency:    r.Latency,
		APA:        apa,
		TowerCount: r.TowerCount,
		HopCount:   r.HopCount(),
		Route:      r,
	}, nil
}

// PathRanking is one row of Table 2: a corridor path with its geodesic
// distance and the fastest networks in rank order.
type PathRanking struct {
	Path           sites.Path
	GeodesicMeters float64
	Ranked         []NetworkSummary
}

// RankNetworks produces Table 2: for each corridor path, the networks
// ranked by end-to-end latency (topN > 0 truncates each ranking).
func RankNetworks(db *uls.Database, date uls.Date, paths []sites.Path, topN int, opts Options) ([]PathRanking, error) {
	var out []PathRanking
	for _, p := range paths {
		rows, err := ConnectedNetworks(db, date, p, opts)
		if err != nil {
			return nil, err
		}
		if topN > 0 && len(rows) > topN {
			rows = rows[:topN]
		}
		out = append(out, PathRanking{
			Path:           p,
			GeodesicMeters: p.GeodesicMeters(),
			Ranked:         rows,
		})
	}
	return out, nil
}
