package core

import (
	"runtime"
	"sort"
	"sync"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// NetworkSummary is one row of Table 1: a connected network's end-to-end
// latency, APA, and tower count on the given path at the given date.
type NetworkSummary struct {
	Licensee   string
	Latency    units.Latency
	APA        float64 // fraction in [0, 1]
	TowerCount int     // towers on the lowest-latency route
	HopCount   int     // microwave hops on the route
	Route      Route
}

// ConnectedNetworks reconstructs every licensee in the database at the
// given date and returns those with an end-to-end route on the path,
// ordered by increasing latency — the paper's Table 1. It is the
// one-shot form of ConnectedNetworksVia over an uncached provider.
func ConnectedNetworks(db *uls.Database, date uls.Date, path sites.Path, opts Options) ([]NetworkSummary, error) {
	return ConnectedNetworksVia(DirectProvider(db), date, path, opts)
}

// ConnectedNetworksVia is ConnectedNetworks over a SnapshotProvider:
// snapshots come from the provider (memoized and fanned out across a
// worker pool when the provider is the snapshot engine), and the
// per-licensee route/APA summaries are computed concurrently. The
// result is deterministic regardless of scheduling.
func ConnectedNetworksVia(p SnapshotProvider, date uls.Date, path sites.Path, opts Options) ([]NetworkSummary, error) {
	licensees := p.DB().Licensees()
	reqs := make([]SnapshotRequest, len(licensees))
	for i, name := range licensees {
		reqs[i] = SnapshotRequest{
			Licensees: []string{name},
			Date:      date,
			DCs:       []sites.DataCenter{path.From, path.To},
			Opts:      opts,
		}
	}
	nets, err := p.Snapshots(reqs)
	if err != nil {
		return nil, err
	}

	summaries := make([]*NetworkSummary, len(nets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(nets) {
		workers = len(nets)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				summaries[i] = summarize(licensees[i], nets[i], path)
			}
		}()
	}
	for i := range nets {
		work <- i
	}
	close(work)
	wg.Wait()

	var out []NetworkSummary
	for _, s := range summaries {
		if s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency < out[j].Latency
		}
		return out[i].Licensee < out[j].Licensee
	})
	return out, nil
}

// summarize builds one licensee's Table 1 row, or nil when the licensee
// has no end-to-end route.
func summarize(licensee string, n *Network, path sites.Path) *NetworkSummary {
	r, ok := n.BestRoute(path)
	if !ok {
		return nil
	}
	apa, _ := n.APA(path)
	return &NetworkSummary{
		Licensee:   licensee,
		Latency:    r.Latency,
		APA:        apa,
		TowerCount: r.TowerCount,
		HopCount:   r.HopCount(),
		Route:      r,
	}
}

// PathRanking is one row of Table 2: a corridor path with its geodesic
// distance and the fastest networks in rank order.
type PathRanking struct {
	Path           sites.Path
	GeodesicMeters float64
	Ranked         []NetworkSummary
}

// RankNetworks produces Table 2: for each corridor path, the networks
// ranked by end-to-end latency (topN > 0 truncates each ranking). It is
// the one-shot form of RankNetworksVia over an uncached provider.
func RankNetworks(db *uls.Database, date uls.Date, paths []sites.Path, topN int, opts Options) ([]PathRanking, error) {
	return RankNetworksVia(DirectProvider(db), date, paths, topN, opts)
}

// RankNetworksVia is RankNetworks over a SnapshotProvider.
func RankNetworksVia(prov SnapshotProvider, date uls.Date, paths []sites.Path, topN int, opts Options) ([]PathRanking, error) {
	var out []PathRanking
	for _, p := range paths {
		rows, err := ConnectedNetworksVia(prov, date, p, opts)
		if err != nil {
			return nil, err
		}
		if topN > 0 && len(rows) > topN {
			rows = rows[:topN]
		}
		out = append(out, PathRanking{
			Path:           p,
			GeodesicMeters: p.GeodesicMeters(),
			Ranked:         rows,
		})
	}
	return out, nil
}
