// Package core implements the paper's primary contribution: systematic
// reconstruction of HFT microwave networks from license filings (§2.3)
// and the analyses built on the reconstructed graphs — end-to-end latency
// and rankings (§3), longitudinal evolution (§4), and the reliability
// metrics APA, link lengths and operating frequencies (§5).
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hftnetview/internal/geo"
	"hftnetview/internal/graph"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// Options tunes reconstruction. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// TowerMergeDecimals is the number of decimal places coordinates are
	// rounded to when deduplicating towers across licenses (4 ≈ 11 m,
	// comfortably below tower spacing and above filing jitter).
	TowerMergeDecimals int
	// MaxFiberMeters is the maximum data-center-to-tower fiber tail the
	// paper assumes exists (50 km, §2.3).
	MaxFiberMeters float64
	// FiberTailsPerDC caps how many towers each data center gets fiber
	// to (nearest first). The paper's Table 1 reports APA = 0 for pure
	// chain networks, which implies a single attachment point — with
	// unlimited tails, a chain's final hops always have a fiber
	// fallback. 0 means unlimited.
	FiberTailsPerDC int
	// StretchBound is the paper's alternate-path latency budget relative
	// to the c-speed geodesic latency (1.05 = "not more than 5% greater",
	// §5).
	StretchBound float64
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		TowerMergeDecimals: 4,
		MaxFiberMeters:     50e3,
		FiberTailsPerDC:    1,
		StretchBound:       1.05,
	}
}

// Fingerprint returns a canonical encoding of the options, stable
// across processes, for use as a cache-key component: two Options
// values produce the same fingerprint iff every reconstruction-relevant
// field is equal. %g normalizes float formatting (1.05 and 1.0500
// literal styles collapse to one encoding).
func (o Options) Fingerprint() string {
	return fmt.Sprintf("tmd=%d;mfm=%g;ftd=%d;sb=%g",
		o.TowerMergeDecimals, o.MaxFiberMeters, o.FiberTailsPerDC, o.StretchBound)
}

// Tower is a deduplicated antenna site in a reconstructed network.
type Tower struct {
	// Key is the canonical rounded-coordinate identity of the site.
	Key string
	// Point is the site coordinate (of the first filing seen).
	Point geo.Point
	// HeightMeters is the tallest support structure filed at the site.
	HeightMeters float64
}

// Link is a reconstructed microwave hop between two towers.
type Link struct {
	// From and To index into Network.Towers.
	From, To int
	// CallSign and PathNumber identify the license path behind the hop.
	CallSign   string
	PathNumber int
	// LengthMeters is the geodesic hop length.
	LengthMeters float64
	// Latency is the one-way propagation delay at microwave speed.
	Latency units.Latency
	// FrequenciesMHz are the assigned center frequencies.
	FrequenciesMHz []float64
}

// FiberTail is an assumed data-center-to-tower fiber stub (§2.3).
type FiberTail struct {
	DataCenter   sites.DataCenter
	Tower        int // index into Network.Towers
	LengthMeters float64
	Latency      units.Latency
}

// Network is one licensee's reconstructed network as of a date.
type Network struct {
	Licensee string
	Date     uls.Date
	Towers   []Tower
	Links    []Link
	Fiber    []FiberTail

	opts      Options
	g         *graph.Graph
	towerID   []graph.NodeID          // tower index -> graph node
	nodeTower map[graph.NodeID]int    // graph node -> tower index
	dcID      map[string]graph.NodeID // DC code -> graph node
	mwEdge    map[graph.EdgeID]int    // graph edge -> Links index
	fbEdge    map[graph.EdgeID]int    // graph edge -> Fiber index
}

// towerKey canonicalizes a coordinate for tower deduplication. The
// quantization is floor(x·scale + 0.5): round-half-up is translation
// invariant, so a tower on a cell boundary and one just east of it land
// in the same cell in both hemispheres. (math.Round's half-away-from-zero
// would put the boundary point in the western cell for negative
// longitudes — the corridor's — but the eastern cell for positive ones,
// silently splitting co-located towers depending on sign.) Formatting
// from the integer cell also avoids a distinct "-0.0000" key.
func towerKey(p geo.Point, decimals int) string {
	scale := math.Pow(10, float64(decimals))
	lat := math.Floor(p.Lat*scale+0.5) / scale
	lon := math.Floor(p.Lon*scale+0.5) / scale
	if lat == 0 {
		lat = 0 // normalize -0
	}
	if lon == 0 {
		lon = 0
	}
	return fmt.Sprintf("%.*f,%.*f", decimals, lat, decimals, lon)
}

// Reconstruct rebuilds the named licensee's network as of the given date
// from its active licenses, stitching links that share tower sites
// (§2.3), and attaches fiber tails to every data center in dcs that has a
// tower within opts.MaxFiberMeters.
func Reconstruct(db *uls.Database, licensee string, date uls.Date, dcs []sites.DataCenter, opts Options) (*Network, error) {
	links := db.ActiveLinks(licensee, date)
	return reconstructLinks(links, licensee, date, dcs, opts)
}

// ReconstructUnion rebuilds the combined network of several filing
// entities, treating their licenses as one infrastructure — the joint
// analysis the paper's §2.4 limitations and §6 future work call for
// ("if a network has multiple entities filing on its behalf, it will
// appear as two separate networks").
func ReconstructUnion(db *uls.Database, licensees []string, date uls.Date, dcs []sites.DataCenter, opts Options) (*Network, error) {
	if len(licensees) == 0 {
		return nil, fmt.Errorf("core: ReconstructUnion needs at least one licensee")
	}
	var links []uls.Link
	for _, name := range licensees {
		links = append(links, db.ActiveLinks(name, date)...)
	}
	return reconstructLinks(links, UnionLabel(licensees), date, dcs, opts)
}

// UnionLabel is the display name of a union network: the licensee
// names joined with " + ", in the given order. Reconstruction paths
// that bypass ReconstructUnion (the delta engine's replay stitch) use
// it so equal licensee sets always yield equal labels.
func UnionLabel(licensees []string) string {
	if len(licensees) == 1 {
		return licensees[0]
	}
	return strings.Join(licensees, " + ")
}

// ReconstructActive stitches a network from an already-resolved active
// license set instead of a date-interval stabbing query — the entry
// point for the delta snapshot engine, which maintains the active set
// incrementally by replaying the temporal event log. The license order
// is irrelevant: stitching sorts the materialized links by their
// unique (call sign, path number) identity, so a replayed set and a
// stab-queried set produce deep-equal networks.
func ReconstructActive(active []*uls.License, label string, date uls.Date, dcs []sites.DataCenter, opts Options) (*Network, error) {
	var links []uls.Link
	for _, l := range active {
		links = append(links, l.Links()...)
	}
	return reconstructLinks(links, label, date, dcs, opts)
}

func reconstructLinks(links []uls.Link, label string, date uls.Date, dcs []sites.DataCenter, opts Options) (*Network, error) {
	if opts.TowerMergeDecimals <= 0 || opts.MaxFiberMeters <= 0 || opts.StretchBound <= 1 {
		return nil, fmt.Errorf("core: invalid options %+v", opts)
	}
	n := &Network{
		Licensee:  label,
		Date:      date,
		opts:      opts,
		g:         graph.New(),
		nodeTower: make(map[graph.NodeID]int),
		dcID:      make(map[string]graph.NodeID),
		mwEdge:    make(map[graph.EdgeID]int),
		fbEdge:    make(map[graph.EdgeID]int),
	}

	// Deterministic order: by call sign then path number.
	sort.Slice(links, func(i, j int) bool {
		if links[i].CallSign != links[j].CallSign {
			return links[i].CallSign < links[j].CallSign
		}
		return links[i].PathNumber < links[j].PathNumber
	})

	towerIdx := make(map[string]int)
	ensureTower := func(loc uls.Location) int {
		key := towerKey(loc.Point, opts.TowerMergeDecimals)
		if i, ok := towerIdx[key]; ok {
			if loc.SupportHeight > n.Towers[i].HeightMeters {
				n.Towers[i].HeightMeters = loc.SupportHeight
			}
			return i
		}
		i := len(n.Towers)
		towerIdx[key] = i
		n.Towers = append(n.Towers, Tower{
			Key:          key,
			Point:        loc.Point,
			HeightMeters: loc.SupportHeight,
		})
		id := n.g.EnsureNode("tower:" + key)
		n.towerID = append(n.towerID, id)
		n.nodeTower[id] = i
		return i
	}

	// Licenses covering the same tower pair (e.g. one filing per hop
	// direction, or re-filed channels) describe one physical link:
	// merge them, unioning their frequencies. Without the merge, a
	// directional license pair would register as two parallel edges and
	// every link would trivially have an "alternate path" — itself.
	linkAt := make(map[[2]int]int)
	for _, lk := range links {
		from := ensureTower(lk.TX)
		to := ensureTower(lk.RX)
		if from == to {
			continue // both endpoints merged into one site; not a link
		}
		key := [2]int{from, to}
		if from > to {
			key = [2]int{to, from}
		}
		if li, ok := linkAt[key]; ok {
			n.Links[li].FrequenciesMHz = mergeFrequencies(
				n.Links[li].FrequenciesMHz, lk.FrequenciesMHz)
			continue
		}
		length := lk.LengthMeters()
		l := Link{
			From:           from,
			To:             to,
			CallSign:       lk.CallSign,
			PathNumber:     lk.PathNumber,
			LengthMeters:   length,
			Latency:        units.MicrowaveLatency(length),
			FrequenciesMHz: append([]float64(nil), lk.FrequenciesMHz...),
		}
		eid, err := n.g.AddEdge(n.towerID[from], n.towerID[to], l.Latency.Seconds())
		if err != nil {
			return nil, fmt.Errorf("core: %s path %d: %w", lk.CallSign, lk.PathNumber, err)
		}
		linkAt[key] = len(n.Links)
		n.mwEdge[eid] = len(n.Links)
		n.Links = append(n.Links, l)
	}

	// Fiber tails: towers within MaxFiberMeters of a data center are
	// assumed reachable over geodesic fiber (§2.3), nearest first, up to
	// FiberTailsPerDC attachments.
	for _, dc := range dcs {
		dcNode := n.g.EnsureNode("dc:" + dc.Code)
		n.dcID[dc.Code] = dcNode
		type cand struct {
			tower int
			dist  float64
		}
		var cands []cand
		for ti, tw := range n.Towers {
			if d := geo.Distance(dc.Location, tw.Point); d <= opts.MaxFiberMeters {
				cands = append(cands, cand{tower: ti, dist: d})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].tower < cands[j].tower
		})
		if opts.FiberTailsPerDC > 0 && len(cands) > opts.FiberTailsPerDC {
			cands = cands[:opts.FiberTailsPerDC]
		}
		for _, c := range cands {
			ft := FiberTail{
				DataCenter:   dc,
				Tower:        c.tower,
				LengthMeters: c.dist,
				Latency:      units.FiberLatency(c.dist),
			}
			eid, err := n.g.AddEdge(dcNode, n.towerID[c.tower], ft.Latency.Seconds())
			if err != nil {
				return nil, fmt.Errorf("core: fiber tail %s: %w", dc.Code, err)
			}
			n.fbEdge[eid] = len(n.Fiber)
			n.Fiber = append(n.Fiber, ft)
		}
	}
	return n, nil
}

// mergeFrequencies unions two sorted-or-not frequency lists without
// duplicates, returning an ascending list.
func mergeFrequencies(a, b []float64) []float64 {
	out := append(append([]float64(nil), a...), b...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || out[i-1] != f {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// Clone returns a deep copy of the network: mutating the clone's
// towers, links, fiber tails, or graph (directly or through analyses
// that temporarily disable edges, like APA and storm routing) leaves
// the receiver untouched. The snapshot engine hands out clones so its
// cached reconstructions stay pristine.
func (n *Network) Clone() *Network {
	c := *n
	c.Towers = append([]Tower(nil), n.Towers...)
	c.Links = append([]Link(nil), n.Links...)
	for i := range c.Links {
		c.Links[i].FrequenciesMHz = append([]float64(nil), n.Links[i].FrequenciesMHz...)
	}
	c.Fiber = append([]FiberTail(nil), n.Fiber...)
	c.g = n.g.Clone()
	c.towerID = append([]graph.NodeID(nil), n.towerID...)
	c.nodeTower = make(map[graph.NodeID]int, len(n.nodeTower))
	for k, v := range n.nodeTower {
		c.nodeTower[k] = v
	}
	c.dcID = make(map[string]graph.NodeID, len(n.dcID))
	for k, v := range n.dcID {
		c.dcID[k] = v
	}
	c.mwEdge = make(map[graph.EdgeID]int, len(n.mwEdge))
	for k, v := range n.mwEdge {
		c.mwEdge[k] = v
	}
	c.fbEdge = make(map[graph.EdgeID]int, len(n.fbEdge))
	for k, v := range n.fbEdge {
		c.fbEdge[k] = v
	}
	return &c
}

// Route is an end-to-end lowest-latency path through a network.
type Route struct {
	Path sites.Path
	// Latency is the end-to-end one-way latency (fiber tails included).
	Latency units.Latency
	// MicrowaveMeters and FiberMeters split the route length by medium.
	MicrowaveMeters float64
	FiberMeters     float64
	// TowerCount is the number of distinct towers on the route, the
	// quantity in Table 1's "#Towers" column.
	TowerCount int
	// Towers are the indices (into Network.Towers) of the route's towers
	// in travel order.
	Towers []int
	// LinkIndexes are the indices (into Network.Links) of the microwave
	// hops in travel order.
	LinkIndexes []int
}

// HopCount returns the number of microwave hops on the route.
func (r Route) HopCount() int { return len(r.LinkIndexes) }

// BestRoute returns the lowest-latency route between two data centers,
// computed with Dijkstra's algorithm accounting for the different speeds
// of light in air and fiber (§2.3). ok is false when no end-to-end path
// exists on the reconstruction date.
func (n *Network) BestRoute(path sites.Path) (Route, bool) {
	src, okS := n.dcID[path.From.Code]
	dst, okD := n.dcID[path.To.Code]
	if !okS || !okD {
		return Route{}, false
	}
	p, ok := n.g.ShortestPath(src, dst)
	if !ok {
		return Route{}, false
	}
	return n.routeFromPath(path, p), true
}

func (n *Network) routeFromPath(path sites.Path, p graph.Path) Route {
	r := Route{Path: path, Latency: units.Latency(p.Weight)}
	for _, eid := range p.Edges {
		if li, ok := n.mwEdge[eid]; ok {
			r.MicrowaveMeters += n.Links[li].LengthMeters
			r.LinkIndexes = append(r.LinkIndexes, li)
		} else if fi, ok := n.fbEdge[eid]; ok {
			r.FiberMeters += n.Fiber[fi].LengthMeters
		}
	}
	seen := make(map[int]bool)
	for _, node := range p.Nodes {
		if ti, ok := n.towerIndexOf(node); ok && !seen[ti] {
			seen[ti] = true
			r.Towers = append(r.Towers, ti)
		}
	}
	r.TowerCount = len(r.Towers)
	return r
}

func (n *Network) towerIndexOf(node graph.NodeID) (int, bool) {
	i, ok := n.nodeTower[node]
	return i, ok
}

// Connected reports whether the network has any end-to-end route for the
// given path.
func (n *Network) Connected(path sites.Path) bool {
	_, ok := n.BestRoute(path)
	return ok
}

// Graph exposes the underlying graph for analyses that need raw access
// (visualization, custom metrics). Callers must not mutate it.
func (n *Network) Graph() *graph.Graph { return n.g }

// LatencyBound returns the paper's §5 alternate-path latency budget for a
// path: StretchBound × the c-speed latency along the geodesic.
func (n *Network) LatencyBound(path sites.Path) units.Latency {
	return units.Latency(n.opts.StretchBound * units.CLatency(path.GeodesicMeters()).Seconds())
}
