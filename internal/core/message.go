package core

import (
	"sort"

	"hftnetview/internal/units"
)

// The paper notes that "each unique trading activity translates to only
// 2 bits of information sent over the network" (§1) and that per-tower
// signal regeneration is the unmodeled latency component (§3). This
// file combines both: end-to-end message latency = propagation +
// per-hop (serialization + regeneration), which shows *why* message
// size is kept minimal and when tower counts start to matter.

// RadioProfile describes the repeater hardware on a network's towers.
type RadioProfile struct {
	// BandwidthBps is the link rate used for serialization delay.
	BandwidthBps float64
	// RegenSeconds is the per-hop signal regeneration/processing delay
	// (analog repeaters ~ nanoseconds; decode-regenerate radios ~ µs).
	RegenSeconds float64
}

// TypicalHFTRadio is a current-generation low-latency microwave radio:
// ~500 Mbps and ~1 µs of regeneration per hop.
func TypicalHFTRadio() RadioProfile {
	return RadioProfile{BandwidthBps: 500e6, RegenSeconds: 1e-6}
}

// MessageLatency returns the end-to-end latency of a message of
// msgBits over the route: propagation plus, per microwave hop,
// serialization (msgBits / bandwidth) and regeneration.
func MessageLatency(r Route, msgBits int, radio RadioProfile) units.Latency {
	perHop := radio.RegenSeconds
	if radio.BandwidthBps > 0 {
		perHop += float64(msgBits) / radio.BandwidthBps
	}
	return r.Latency + units.Latency(perHop*float64(r.HopCount()))
}

// MessageSummary re-scores a Table 1 row set for a concrete message
// size and radio profile, re-ranking by total message latency.
type MessageSummary struct {
	NetworkSummary
	// Total is propagation + per-hop costs for the message.
	Total units.Latency
}

// RankByMessageLatency re-ranks networks for a message size and radio
// profile. With the paper's 2-bit updates the ranking equals Table 1's
// whenever regeneration is small; large messages or slow radios shift
// the race toward fewer-tower networks (the §3 caveat).
func RankByMessageLatency(rows []NetworkSummary, msgBits int, radio RadioProfile) []MessageSummary {
	out := make([]MessageSummary, 0, len(rows))
	for _, r := range rows {
		out = append(out, MessageSummary{
			NetworkSummary: r,
			Total:          MessageLatency(r.Route, msgBits, radio),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total < out[j].Total
		}
		return out[i].Licensee < out[j].Licensee
	})
	return out
}

// SerializationBudget answers: at what message size does serialization
// start to cost one microsecond per hop at the given bandwidth?
func SerializationBudget(radio RadioProfile, perHop units.Latency) (bits int) {
	if radio.BandwidthBps <= 0 {
		return 0
	}
	return int(perHop.Seconds() * radio.BandwidthBps)
}
