package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

var (
	pathNY4 = sites.Path{From: sites.CME, To: sites.NY4}
	grant15 = uls.NewDate(2015, time.June, 1)
	date20  = uls.NewDate(2020, time.April, 1)
)

// addLinkLicense files one single-hop license between two points.
func addLinkLicense(t testing.TB, db *uls.Database, licensee string, seq int,
	a, b geo.Point, grant, cancel uls.Date, freqsMHz []float64) {
	t.Helper()
	l := &uls.License{
		CallSign:     fmt.Sprintf("WQ%s%04d", initials(licensee), seq),
		LicenseID:    seq,
		Licensee:     licensee,
		FRN:          "0000000000",
		RadioService: uls.ServiceMG,
		Status:       uls.StatusActive,
		Grant:        grant,
		Cancellation: cancel,
		Locations: []uls.Location{
			{Number: 1, Point: a, GroundElevation: 200, SupportHeight: 100},
			{Number: 2, Point: b, GroundElevation: 200, SupportHeight: 100},
		},
		Paths: []uls.Path{{
			Number: 1, TXLocation: 1, RXLocation: 2,
			StationClass: uls.ClassFXO, FrequenciesMHz: freqsMHz,
		}},
	}
	if err := db.Add(l); err != nil {
		t.Fatalf("add license: %v", err)
	}
}

func initials(s string) string {
	out := make([]byte, 0, 2)
	for i := 0; i < len(s) && len(out) < 2; i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			out = append(out, s[i])
		}
	}
	for len(out) < 2 {
		out = append(out, 'X')
	}
	return string(out)
}

// chainTowers returns nTowers points along the CME→NY4 geodesic, the
// first ~2 km from CME and the last ~2 km from NY4.
func chainTowers(nTowers int) []geo.Point {
	pts := make([]geo.Point, nTowers)
	for i := range pts {
		frac := 0.002 + (0.996 * float64(i) / float64(nTowers-1))
		pts[i] = geo.Interpolate(sites.CME.Location, sites.NY4.Location, frac)
	}
	return pts
}

// buildChainNetwork files a pure chain for licensee; returns the tower
// points.
func buildChainNetwork(t testing.TB, db *uls.Database, licensee string,
	nTowers int, grant, cancel uls.Date, freqMHz float64) []geo.Point {
	pts := chainTowers(nTowers)
	for i := 0; i < nTowers-1; i++ {
		addLinkLicense(t, db, licensee, i+1, pts[i], pts[i+1], grant, cancel,
			[]float64{freqMHz})
	}
	return pts
}

// buildLadderNetwork files a two-rail ladder: rail A on the geodesic,
// rail B offset laterally, rungs at every tower pair. Rail A carries
// freqA, rail B and rungs carry freqB.
func buildLadderNetwork(t testing.TB, db *uls.Database, licensee string,
	nTowers int, lateralM float64, grant uls.Date, freqA, freqB float64) {
	a := chainTowers(nTowers)
	brg := geo.InitialBearing(sites.CME.Location, sites.NY4.Location)
	b := make([]geo.Point, nTowers)
	for i := range b {
		b[i] = geo.Offset(a[i], brg, 0, lateralM)
	}
	seq := 1
	for i := 0; i < nTowers-1; i++ {
		addLinkLicense(t, db, licensee, seq, a[i], a[i+1], grant, uls.Date{}, []float64{freqA})
		seq++
		addLinkLicense(t, db, licensee, seq, b[i], b[i+1], grant, uls.Date{}, []float64{freqB})
		seq++
	}
	for i := 0; i < nTowers; i++ {
		addLinkLicense(t, db, licensee, seq, a[i], b[i], grant, uls.Date{}, []float64{freqB})
		seq++
	}
}

func reconstructOrDie(t testing.TB, db *uls.Database, licensee string, d uls.Date) *Network {
	t.Helper()
	n, err := Reconstruct(db, licensee, d, sites.All, DefaultOptions())
	if err != nil {
		t.Fatalf("Reconstruct(%s): %v", licensee, err)
	}
	return n
}

func TestReconstructChain(t *testing.T) {
	db := uls.NewDatabase()
	pts := buildChainNetwork(t, db, "Chain Net", 25, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)

	if len(n.Towers) != 25 {
		t.Errorf("towers = %d, want 25 (shared endpoints deduped)", len(n.Towers))
	}
	if len(n.Links) != 24 {
		t.Errorf("links = %d, want 24", len(n.Links))
	}
	// Fiber tails: first tower within 50 km of CME, last within 50 km of
	// NY4; NYSE/NASDAQ may also be within 50 km of trailing towers.
	if len(n.Fiber) < 2 {
		t.Errorf("fiber tails = %d, want >= 2", len(n.Fiber))
	}
	r, ok := n.BestRoute(pathNY4)
	if !ok {
		t.Fatal("chain should be connected")
	}
	if r.TowerCount != 25 {
		t.Errorf("route towers = %d, want 25", r.TowerCount)
	}
	if r.HopCount() != 24 {
		t.Errorf("route hops = %d, want 24", r.HopCount())
	}
	// Latency must equal MW polyline latency plus the two fiber tails.
	mw := units.MicrowaveLatency(geo.PathLength(pts))
	fiber := units.FiberLatency(geo.Distance(sites.CME.Location, pts[0])) +
		units.FiberLatency(geo.Distance(pts[len(pts)-1], sites.NY4.Location))
	want := mw + fiber
	if math.Abs(r.Latency.Seconds()-want.Seconds()) > 1e-9 {
		t.Errorf("route latency = %v, want %v", r.Latency, want)
	}
	// On-geodesic chain ≈ c-latency of the geodesic, inflated only by
	// the slower fiber tails (~0.2%) and air refraction (~0.03%).
	c := units.CLatency(pathNY4.GeodesicMeters())
	if r.Latency.Stretch(c) > 1.003 {
		t.Errorf("stretch = %v, want < 1.003", r.Latency.Stretch(c))
	}
}

func TestReconstructBeforeGrant(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 10, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", uls.NewDate(2014, time.January, 1))
	if len(n.Links) != 0 {
		t.Errorf("links before grant = %d, want 0", len(n.Links))
	}
	if n.Connected(pathNY4) {
		t.Error("network should not be connected before grant")
	}
}

func TestReconstructAfterCancellation(t *testing.T) {
	db := uls.NewDatabase()
	cancel := uls.NewDate(2018, time.March, 1)
	buildChainNetwork(t, db, "Dead Net", 10, grant15, cancel, 11000)
	n := reconstructOrDie(t, db, "Dead Net", date20)
	if n.Connected(pathNY4) {
		t.Error("cancelled network should be disconnected")
	}
	nLive := reconstructOrDie(t, db, "Dead Net", uls.NewDate(2017, time.June, 1))
	if !nLive.Connected(pathNY4) {
		t.Error("network should be connected before cancellation")
	}
}

func TestReconstructMissingOneLink(t *testing.T) {
	// A chain with a hole has no end-to-end route.
	db := uls.NewDatabase()
	pts := chainTowers(12)
	for i := 0; i < len(pts)-1; i++ {
		if i == 5 {
			continue // hole
		}
		addLinkLicense(t, db, "Holey Net", i+1, pts[i], pts[i+1], grant15,
			uls.Date{}, []float64{11000})
	}
	n := reconstructOrDie(t, db, "Holey Net", date20)
	if n.Connected(pathNY4) {
		t.Error("chain with a missing link should be disconnected")
	}
}

func TestFiberCutoff(t *testing.T) {
	// A chain whose last tower is > 50 km from NY4 is not connected.
	db := uls.NewDatabase()
	pts := chainTowers(20)
	short := pts[:15] // ends mid-corridor
	for i := 0; i < len(short)-1; i++ {
		addLinkLicense(t, db, "Short Net", i+1, short[i], short[i+1], grant15,
			uls.Date{}, []float64{11000})
	}
	n := reconstructOrDie(t, db, "Short Net", date20)
	if n.Connected(pathNY4) {
		t.Error("chain ending mid-corridor should not reach NY4")
	}
}

func TestAPAChainIsZero(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 25, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	apa, ok := n.APA(pathNY4)
	if !ok {
		t.Fatal("APA not computable")
	}
	if apa != 0 {
		t.Errorf("chain APA = %v, want 0", apa)
	}
}

func TestAPALadderIsHigh(t *testing.T) {
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Ladder Net", 15, 3000, grant15, 11000, 6000)
	n := reconstructOrDie(t, db, "Ladder Net", date20)
	apa, ok := n.APA(pathNY4)
	if !ok {
		t.Fatal("APA not computable")
	}
	if apa < 0.9 {
		t.Errorf("ladder APA = %v, want >= 0.9", apa)
	}
}

func TestAPADisconnectedNetwork(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Dead Net", 10, grant15, uls.NewDate(2016, time.January, 1), 11000)
	n := reconstructOrDie(t, db, "Dead Net", date20)
	if _, ok := n.APA(pathNY4); ok {
		t.Error("APA should not be computable for a disconnected network")
	}
}

func TestLinkLengthsOnBoundedPaths(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 25, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	lengths, ok := n.LinkLengthsOnBoundedPaths(pathNY4)
	if !ok {
		t.Fatal("no bounded paths")
	}
	if len(lengths) != 24 {
		t.Errorf("lengths = %d, want 24", len(lengths))
	}
	// 1186 km over 24 links ≈ 49.4 km per link.
	cdf := NewCDF(lengths)
	if med := cdf.Median() / 1000; math.Abs(med-49.4) > 2 {
		t.Errorf("median link length = %.1f km, want ≈49.4", med)
	}
	// Ascending.
	for i := 1; i < len(lengths); i++ {
		if lengths[i-1] > lengths[i] {
			t.Fatal("lengths not sorted")
		}
	}
}

func TestFrequenciesOnShortestAndAlternatePaths(t *testing.T) {
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Ladder Net", 10, 3000, grant15, 11000, 6000)
	n := reconstructOrDie(t, db, "Ladder Net", date20)

	sp, ok := n.FrequenciesOnShortestPath(pathNY4)
	if !ok || len(sp) == 0 {
		t.Fatal("no shortest-path frequencies")
	}
	// Rail A (on the geodesic) carries 11 GHz.
	for _, f := range sp {
		if math.Abs(f-11.0) > 0.01 {
			t.Errorf("shortest-path frequency %v GHz, want 11", f)
		}
	}
	alt, ok := n.FrequenciesOnAlternatePaths(pathNY4)
	if !ok || len(alt) == 0 {
		t.Fatal("no alternate-path frequencies")
	}
	// Alternates are rail B and rungs at 6 GHz.
	has6 := false
	for _, f := range alt {
		if math.Abs(f-6.0) < 0.01 {
			has6 = true
		}
	}
	if !has6 {
		t.Error("alternate paths should carry 6 GHz links")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	if c.Median() != 2 {
		t.Errorf("median = %v, want 2", c.Median())
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.FractionBelow(3); got != 0.5 {
		t.Errorf("FractionBelow(3) = %v, want 0.5", got)
	}
	if got := c.Quantile(0.25); got != 1 {
		t.Errorf("Quantile(0.25) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.Median()) {
		t.Error("empty median should be NaN")
	}
	if empty.At(1) != 0 || empty.FractionBelow(1) != 0 {
		t.Error("empty CDF should be 0 everywhere")
	}
}

func TestConnectedNetworksOrdering(t *testing.T) {
	db := uls.NewDatabase()
	// Fast: straight chain. Slow: chain with lateral detours.
	buildChainNetwork(t, db, "Fast Net", 25, grant15, uls.Date{}, 11000)
	pts := chainTowers(25)
	brg := geo.InitialBearing(sites.CME.Location, sites.NY4.Location)
	for i := 0; i < len(pts)-1; i++ {
		a, b := pts[i], pts[i+1]
		if i%2 == 0 {
			a = geo.Offset(a, brg, 0, 8000)
		} else {
			b = geo.Offset(b, brg, 0, 8000)
		}
		addLinkLicense(t, db, "Slow Net", i+1, a, b, grant15, uls.Date{}, []float64{6000})
	}
	// And one never-connected licensee.
	buildChainNetwork(t, db, "Partial Net", 6, grant15, uls.Date{}, 11000)

	rows, err := ConnectedNetworks(db, date20, pathNY4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		// Partial Net is only the first 6 towers of the corridor chain;
		// it cannot reach NY4... unless its towers all sit within CME
		// fiber range. It should be excluded.
		t.Fatalf("connected networks = %d, want 3? rows=%+v", len(rows), rows)
	}
	_ = rows
}

func TestEvolution(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Evolving Net", 20, uls.NewDate(2016, time.January, 1),
		uls.Date{}, 11000)
	dates := PaperSampleDates(2013, 2020)
	if len(dates) != 8 {
		t.Fatalf("sample dates = %d, want 8", len(dates))
	}
	if dates[7] != uls.NewDate(2020, time.April, 1) {
		t.Errorf("2020 sample = %v, want April 1", dates[7])
	}
	pointsList, err := Evolution(db, "Evolving Net", pathNY4, dates, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pointsList) != 8 {
		t.Fatalf("evolution points = %d", len(pointsList))
	}
	for i, pt := range pointsList {
		wantConnected := dates[i].Year >= 2016
		if pt.Connected != wantConnected {
			t.Errorf("connected at %v = %v, want %v", pt.Date, pt.Connected, wantConnected)
		}
		wantLicenses := 0
		if dates[i].Year >= 2016 {
			wantLicenses = 19
		}
		if pt.ActiveLicenses != wantLicenses {
			t.Errorf("licenses at %v = %d, want %d", pt.Date, pt.ActiveLicenses, wantLicenses)
		}
	}
}

func TestYAMLRoundTrip(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 8, grant15, uls.Date{}, 11245)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	data, err := n.ToYAML()
	if err != nil {
		t.Fatal(err)
	}
	nf, err := ParseNetworkYAML(data)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, data)
	}
	if nf.Licensee != "Chain Net" {
		t.Errorf("licensee = %q", nf.Licensee)
	}
	if nf.Date != n.Date.String() {
		t.Errorf("date = %q, want %q", nf.Date, n.Date.String())
	}
	if len(nf.Towers) != len(n.Towers) {
		t.Fatalf("towers = %d, want %d", len(nf.Towers), len(n.Towers))
	}
	for i := range nf.Towers {
		if geo.Distance(nf.Towers[i].Point, n.Towers[i].Point) > 1 {
			t.Errorf("tower %d moved in YAML round trip", i)
		}
	}
	if len(nf.Links) != len(n.Links) {
		t.Fatalf("links = %d, want %d", len(nf.Links), len(n.Links))
	}
	for i := range nf.Links {
		if nf.Links[i].From != n.Links[i].From || nf.Links[i].To != n.Links[i].To {
			t.Errorf("link %d endpoints changed", i)
		}
		if len(nf.Links[i].FrequenciesMHz) != 1 || nf.Links[i].FrequenciesMHz[0] != 11245 {
			t.Errorf("link %d frequencies = %v", i, nf.Links[i].FrequenciesMHz)
		}
		wantKM := n.Links[i].LengthMeters / 1000
		if math.Abs(nf.Links[i].LengthKM-wantKM) > 0.01 {
			t.Errorf("link %d length = %v, want %v", i, nf.Links[i].LengthKM, wantKM)
		}
	}
}

func TestNetworkFromFileRoundTrip(t *testing.T) {
	// Reconstruct → YAML → parse → NetworkFromFile must reproduce the
	// network's routes exactly (coordinates carry full precision).
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Round Net", 12, 3000, grant15, 11000, 6000)
	orig := reconstructOrDie(t, db, "Round Net", date20)
	data, err := orig.ToYAML()
	if err != nil {
		t.Fatal(err)
	}
	nf, err := ParseNetworkYAML(data)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NetworkFromFile(nf, sites.All, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt.Towers) != len(orig.Towers) || len(rebuilt.Links) != len(orig.Links) {
		t.Fatalf("rebuilt %d towers / %d links, want %d / %d",
			len(rebuilt.Towers), len(rebuilt.Links), len(orig.Towers), len(orig.Links))
	}
	r1, ok1 := orig.BestRoute(pathNY4)
	r2, ok2 := rebuilt.BestRoute(pathNY4)
	if !ok1 || !ok2 {
		t.Fatal("routes missing")
	}
	if math.Abs(r1.Latency.Seconds()-r2.Latency.Seconds()) > 1e-12 {
		t.Errorf("latency changed through YAML: %v vs %v", r1.Latency, r2.Latency)
	}
	a1, _ := orig.APA(pathNY4)
	a2, _ := rebuilt.APA(pathNY4)
	if a1 != a2 {
		t.Errorf("APA changed through YAML: %v vs %v", a1, a2)
	}
}

func TestNetworkFromFileErrors(t *testing.T) {
	nf := &NetworkFile{Licensee: "X", Date: "garbage"}
	if _, err := NetworkFromFile(nf, sites.All, DefaultOptions()); err == nil {
		t.Error("bad date accepted")
	}
	nf = &NetworkFile{Licensee: "X", Date: "04/01/2020",
		Towers: []TowerRecord{{ID: 0, Point: geo.Point{Lat: 41, Lon: -80}}},
		Links:  []LinkRecord{{From: 0, To: 7}},
	}
	if _, err := NetworkFromFile(nf, sites.All, DefaultOptions()); err == nil {
		t.Error("dangling link accepted")
	}
}

func TestParseNetworkYAMLErrors(t *testing.T) {
	bad := []string{
		"- a\n- b\n",                        // not a mapping
		"date: 04/01/2020\n",                // missing licensee
		"licensee: X\ntowers:\n  - 1\n",     // tower not a mapping
		"licensee: X\ntowers:\n  - id: 0\n", // tower missing coords
		"licensee: X\ntowers:\n  - id: 0\n    lat: 41.0\n    lon: -80.0\nlinks:\n  - from: 0\n    to: 5\n", // bad link ref
	}
	for _, in := range bad {
		if _, err := ParseNetworkYAML([]byte(in)); err == nil {
			t.Errorf("ParseNetworkYAML(%q) succeeded, want error", in)
		}
	}
}

func TestReconstructInvalidOptions(t *testing.T) {
	db := uls.NewDatabase()
	for _, opts := range []Options{
		{},
		{TowerMergeDecimals: 4, MaxFiberMeters: 50e3, StretchBound: 1.0},
		{TowerMergeDecimals: 0, MaxFiberMeters: 50e3, StretchBound: 1.05},
	} {
		if _, err := Reconstruct(db, "X", date20, sites.All, opts); err == nil {
			t.Errorf("Reconstruct accepted invalid options %+v", opts)
		}
	}
}

func TestLatencyBound(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 10, grant15, uls.Date{}, 11000)
	n := reconstructOrDie(t, db, "Chain Net", date20)
	bound := n.LatencyBound(pathNY4)
	c := units.CLatency(pathNY4.GeodesicMeters())
	if math.Abs(bound.Stretch(c)-1.05) > 1e-9 {
		t.Errorf("bound stretch = %v, want 1.05", bound.Stretch(c))
	}
}
