package core

import (
	"testing"
	"time"

	"hftnetview/internal/uls"
)

func TestDiffNetworksIdentical(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Chain Net", 10, grant15, uls.Date{}, 11000)
	a := reconstructOrDie(t, db, "Chain Net", date20)
	b := reconstructOrDie(t, db, "Chain Net", date20)
	d := DiffNetworks(a, b)
	if d.TowersAdded != 0 || d.TowersRemoved != 0 || d.TowersKept != 10 {
		t.Errorf("towers diff = %+v", d)
	}
	if d.LinksAdded != 0 || d.LinksRemoved != 0 || d.LinksKept != 9 {
		t.Errorf("links diff = %+v", d)
	}
}

func TestDiffNetworksGrowth(t *testing.T) {
	db := uls.NewDatabase()
	// Original chain from 2015; ladder rails added in 2018.
	buildChainNetwork(t, db, "Grow Net", 10, grant15, uls.Date{}, 11000)
	pts := chainTowers(10)
	grant18 := uls.NewDate(2018, time.June, 1)
	for i := 0; i < 3; i++ {
		addLinkLicense(t, db, "Grow Net", 100+i, pts[i], pts[i+2], grant18,
			uls.Date{}, []float64{6004.5})
	}
	before := reconstructOrDie(t, db, "Grow Net", uls.NewDate(2016, time.January, 1))
	after := reconstructOrDie(t, db, "Grow Net", date20)
	d := DiffNetworks(before, after)
	if d.TowersAdded != 0 || d.TowersKept != 10 {
		t.Errorf("bypass links reuse towers: %+v", d)
	}
	if d.LinksAdded != 3 || d.LinksKept != 9 || d.LinksRemoved != 0 {
		t.Errorf("links diff = %+v, want 3 added", d)
	}
}

func TestDiffCorpusNLN2016vs2020(t *testing.T) {
	db := corpusForCore(t)
	before := reconstructCorpus(t, db, "New Line Networks", uls.NewDate(2016, time.January, 1))
	after := reconstructCorpus(t, db, "New Line Networks", date20)
	d := DiffNetworks(before, after)
	// Fig 3 narrative: significantly more towers and redundant links by
	// 2020, while keeping most of the 2016 corridor.
	if d.TowersAdded < 10 {
		t.Errorf("towers added = %d, want the Fig 3 build-out", d.TowersAdded)
	}
	if d.LinksAdded < 10 {
		t.Errorf("links added = %d", d.LinksAdded)
	}
	if d.TowersKept < 20 {
		t.Errorf("towers kept = %d, want continuity", d.TowersKept)
	}
	// The 2016→2020 upgrades replaced some towers with nearby better
	// sites (§4): removed towers with an added tower within 30 km.
	if d.TowersRemoved > 0 {
		if moved := MovedTowers(before, after, 30e3); moved == 0 {
			t.Errorf("%d towers removed but none replaced nearby", d.TowersRemoved)
		}
	}
}

func TestClearAirAvailabilityCorpus(t *testing.T) {
	db := corpusForCore(t)
	wh := reconstructCorpus(t, db, "Webline Holdings", date20)
	nln := reconstructCorpus(t, db, "New Line Networks", date20)
	aWH, ok1 := wh.ClearAirAvailability(pathNY4, 40)
	aNLN, ok2 := nln.ClearAirAvailability(pathNY4, 40)
	if !ok1 || !ok2 {
		t.Fatal("availability not computable")
	}
	// §5/§6: WH's shorter, lower-band links are more available even in
	// clear air.
	if aWH <= aNLN {
		t.Errorf("WH clear-air availability %v not above NLN %v", aWH, aNLN)
	}
	if aWH < 0.998 || aNLN < 0.99 {
		t.Errorf("availabilities implausible: WH %v, NLN %v", aWH, aNLN)
	}
	// Disconnected network: not computable.
	dead := reconstructCorpus(t, db, "National Tower Company", date20)
	if _, ok := dead.ClearAirAvailability(pathNY4, 40); ok {
		t.Error("dead network should have no availability")
	}
}
