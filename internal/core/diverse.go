package core

import (
	"hftnetview/internal/sites"
)

// DiverseRoutes returns up to k loop-free end-to-end routes in
// increasing latency order (Yen's algorithm over the reconstruction
// graph) — the concrete alternate routes behind a network's APA number.
// A pure chain yields exactly one route; Webline's braid yields many
// within microseconds of each other.
func (n *Network) DiverseRoutes(path sites.Path, k int) []Route {
	src, okS := n.dcID[path.From.Code]
	dst, okD := n.dcID[path.To.Code]
	if !okS || !okD {
		return nil
	}
	paths := n.g.KShortestPaths(src, dst, k)
	out := make([]Route, 0, len(paths))
	for _, p := range paths {
		out = append(out, n.routeFromPath(path, p))
	}
	return out
}
