package core

import (
	"math"
	"sort"

	"hftnetview/internal/graph"
	"hftnetview/internal/sites"
)

// APA computes the paper's alternate path availability (§5): the
// fraction of the path's candidate microwave links whose individual
// removal leaves the network's end-to-end latency within StretchBound ×
// the c-speed geodesic latency.
//
// The candidate universe is the set of links that participate in at
// least one loop-free path within the bound (see BoundedPaths). Links
// that never serve the path — e.g. a spur toward a different data center
// — are not part of the path's redundancy question; counting them would
// report nonzero "redundancy" for a pure chain with an unrelated spur.
// Fiber tails are assumed infrastructure, not licensed links, so they
// are not candidates either.
//
// ok is false when the network has no end-to-end route at all, in which
// case APA is meaningless.
func (n *Network) APA(path sites.Path) (apa float64, ok bool) {
	set, okSet := n.BoundedPaths(path)
	if !okSet || len(set.LinkIndexes) == 0 {
		return 0, false
	}
	src := n.dcID[path.From.Code]
	dst := n.dcID[path.To.Code]
	bound := n.LatencyBound(path).Seconds()
	inUniverse := make(map[int]bool, len(set.LinkIndexes))
	for _, li := range set.LinkIndexes {
		inUniverse[li] = true
	}
	results := n.g.EdgeRemovalAnalysisFast(src, dst, bound)
	total, within := 0, 0
	for _, r := range results {
		li, isMW := n.mwEdge[r.Edge]
		if !isMW || !inUniverse[li] {
			continue
		}
		total++
		if r.WithinBound {
			within++
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(within) / float64(total), true
}

// BoundedPathSet is the §5 analysis universe: the microwave links that
// lie on at least one loop-free end-to-end path within the latency
// bound.
type BoundedPathSet struct {
	Path sites.Path
	// LinkIndexes are the unique microwave links (indices into
	// Network.Links) appearing on at least one bounded path, sorted.
	LinkIndexes []int
}

// BoundedPaths computes the §5 universe: the set of microwave links that
// participate in some loop-free path within the latency bound (the links
// of Fig 4a's CDFs).
//
// A link (u,v) of weight w is accepted when d(s,u) + w + d(v,t) ≤ bound
// (in either orientation) AND the shortest s→u and v→t paths are
// node-disjoint, which makes the concatenation a genuine simple path.
// Without the disjointness check, an out-and-back walk onto a dead-end
// spur would qualify and pollute the universe. Two Dijkstra passes
// suffice — no exponential simple-path enumeration. (The check is
// mildly conservative: if only non-tree s→u / v→t path pairs are
// disjoint the link is missed; corridor geometries don't produce that
// case.)
func (n *Network) BoundedPaths(path sites.Path) (BoundedPathSet, bool) {
	src, okS := n.dcID[path.From.Code]
	dst, okD := n.dcID[path.To.Code]
	set := BoundedPathSet{Path: path}
	if !okS || !okD {
		return set, false
	}
	bound := n.LatencyBound(path).Seconds()
	fromSrc, prevS := n.g.ShortestPathTree(src)
	fromDst, prevT := n.g.ShortestPathTree(dst)
	if fromSrc[dst] > bound {
		return set, false
	}

	// Memoized tree-path node sets.
	sPaths := make(map[graph.NodeID]map[graph.NodeID]bool)
	tPaths := make(map[graph.NodeID][]graph.NodeID)
	sPathSet := func(u graph.NodeID) map[graph.NodeID]bool {
		if s, ok := sPaths[u]; ok {
			return s
		}
		nodes := n.g.TreePathNodes(prevS, src, u)
		s := make(map[graph.NodeID]bool, len(nodes))
		for _, nd := range nodes {
			s[nd] = true
		}
		sPaths[u] = s
		return s
	}
	tPath := func(v graph.NodeID) []graph.NodeID {
		if p, ok := tPaths[v]; ok {
			return p
		}
		p := n.g.TreePathNodes(prevT, dst, v)
		tPaths[v] = p
		return p
	}
	simpleVia := func(u, v graph.NodeID, w float64) bool {
		if fromSrc[u]+w+fromDst[v] > bound {
			return false
		}
		sSet := sPathSet(u)
		if sSet == nil {
			return false
		}
		for _, nd := range tPath(v) {
			if sSet[nd] {
				return false
			}
		}
		return true
	}

	for eid, li := range n.mwEdge {
		e := n.g.Edge(eid)
		if e.Disabled {
			continue
		}
		if simpleVia(e.A, e.B, e.Weight) || simpleVia(e.B, e.A, e.Weight) {
			set.LinkIndexes = append(set.LinkIndexes, li)
		}
	}
	sort.Ints(set.LinkIndexes)
	return set, true
}

// LinkLengthsOnBoundedPaths returns the lengths (meters, ascending) of
// the microwave links on all loop-free paths within the §5 bound — the
// sample Fig 4(a) plots as a CDF.
func (n *Network) LinkLengthsOnBoundedPaths(path sites.Path) ([]float64, bool) {
	set, ok := n.BoundedPaths(path)
	if !ok {
		return nil, false
	}
	lengths := make([]float64, 0, len(set.LinkIndexes))
	for _, li := range set.LinkIndexes {
		lengths = append(lengths, n.Links[li].LengthMeters)
	}
	sort.Float64s(lengths)
	return lengths, true
}

// FrequenciesOnShortestPath returns the operating frequencies (GHz,
// ascending) of the microwave links on the lowest-latency route — the
// per-network sample of Fig 4(b).
func (n *Network) FrequenciesOnShortestPath(path sites.Path) ([]float64, bool) {
	r, ok := n.BestRoute(path)
	if !ok {
		return nil, false
	}
	var out []float64
	for _, li := range r.LinkIndexes {
		for _, mhz := range n.Links[li].FrequenciesMHz {
			out = append(out, mhz/1000)
		}
	}
	sort.Float64s(out)
	return out, true
}

// FrequenciesOnAlternatePaths returns the frequencies (GHz, ascending)
// of microwave links that appear on bounded alternate paths but not on
// the shortest path — Fig 4(b)'s "NLN-alternate" series.
func (n *Network) FrequenciesOnAlternatePaths(path sites.Path) ([]float64, bool) {
	set, ok := n.BoundedPaths(path)
	if !ok {
		return nil, false
	}
	r, ok := n.BestRoute(path)
	if !ok {
		return nil, false
	}
	onSP := make(map[int]bool, len(r.LinkIndexes))
	for _, li := range r.LinkIndexes {
		onSP[li] = true
	}
	var out []float64
	for _, li := range set.LinkIndexes {
		if onSP[li] {
			continue
		}
		for _, mhz := range n.Links[li].FrequenciesMHz {
			out = append(out, mhz/1000)
		}
	}
	sort.Float64s(out)
	return out, true
}

// CDF is an empirical cumulative distribution over a sorted sample.
type CDF struct {
	// Values is the ascending sample.
	Values []float64
}

// NewCDF copies and sorts the sample.
func NewCDF(sample []float64) CDF {
	vs := append([]float64(nil), sample...)
	sort.Float64s(vs)
	return CDF{Values: vs}
}

// At returns the empirical CDF value P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.Values, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.Values))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the sample using
// the nearest-rank method; Quantile(0.5) is the median the paper quotes.
func (c CDF) Quantile(q float64) float64 {
	if len(c.Values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.Values[0]
	}
	if q >= 1 {
		return c.Values[len(c.Values)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.Values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.Values[rank]
}

// Median returns the 50th-percentile value.
func (c CDF) Median() float64 { return c.Quantile(0.5) }

// FractionBelow returns the share of the sample strictly below x (used
// for statements like "more than 94% of the frequencies are under
// 7 GHz").
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.Values, x)
	return float64(i) / float64(len(c.Values))
}
