package core

import (
	"time"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// EvolutionPoint is one sample of a network's longitudinal trajectory
// (§4): its end-to-end latency and active license count on a date.
type EvolutionPoint struct {
	Date uls.Date
	// Connected reports whether an end-to-end route existed; Latency is
	// meaningful only when it did.
	Connected bool
	Latency   units.Latency
	// ActiveLicenses is the licensee's license count in force on Date
	// (Fig 2's y-axis).
	ActiveLicenses int
}

// Evolution reconstructs the licensee's network at each date and reports
// the trajectory — the data behind Figs 1 and 2. It is the one-shot form
// of EvolutionVia over an uncached provider.
func Evolution(db *uls.Database, licensee string, path sites.Path, dates []uls.Date, opts Options) ([]EvolutionPoint, error) {
	return EvolutionVia(DirectProvider(db), licensee, path, dates, opts)
}

// EvolutionVia is Evolution over a SnapshotProvider: the per-date
// reconstructions are independent, so the provider may resolve the
// sweep in parallel (and, with the snapshot engine, from cache).
func EvolutionVia(p SnapshotProvider, licensee string, path sites.Path, dates []uls.Date, opts Options) ([]EvolutionPoint, error) {
	reqs := make([]SnapshotRequest, len(dates))
	for i, d := range dates {
		reqs[i] = SnapshotRequest{
			Licensees: []string{licensee},
			Date:      d,
			DCs:       []sites.DataCenter{path.From, path.To},
			Opts:      opts,
		}
	}
	nets, err := p.Snapshots(reqs)
	if err != nil {
		return nil, err
	}
	db := p.DB()
	out := make([]EvolutionPoint, 0, len(dates))
	for i, d := range dates {
		pt := EvolutionPoint{Date: d, ActiveLicenses: db.ActiveCountByLicensee(d)[licensee]}
		if r, ok := nets[i].BestRoute(path); ok {
			pt.Connected = true
			pt.Latency = r.Latency
		}
		out = append(out, pt)
	}
	return out, nil
}

// PaperSampleDates returns the sampling dates of Figs 1 and 2: January
// 1st of each year from firstYear through lastYear, except that when
// lastYear is 2020 the final sample is April 1st (the paper's snapshot
// date).
func PaperSampleDates(firstYear, lastYear int) []uls.Date {
	var out []uls.Date
	for y := firstYear; y <= lastYear; y++ {
		if y == 2020 {
			out = append(out, uls.NewDate(2020, time.April, 1))
			continue
		}
		out = append(out, uls.NewDate(y, time.January, 1))
	}
	return out
}
