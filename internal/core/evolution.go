package core

import (
	"fmt"
	"time"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// EvolutionPoint is one sample of a network's longitudinal trajectory
// (§4): its end-to-end latency and active license count on a date.
type EvolutionPoint struct {
	Date uls.Date
	// Connected reports whether an end-to-end route existed; Latency is
	// meaningful only when it did.
	Connected bool
	Latency   units.Latency
	// ActiveLicenses is the licensee's license count in force on Date
	// (Fig 2's y-axis).
	ActiveLicenses int
}

// EvolutionSweeper is a provider that can resolve a whole longitudinal
// sweep itself — the snapshot engine implements it as one linear pass
// over the temporal event log (distinct anchors resolved in ascending
// date order, so the rolling replay cursor only moves forward) instead
// of one independent reconstruction per date. EvolutionVia prefers it
// when the provider offers it.
type EvolutionSweeper interface {
	EvolutionSweep(licensee string, path sites.Path, dates []uls.Date, opts Options) ([]EvolutionPoint, error)
}

// Evolution reconstructs the licensee's network at each date and reports
// the trajectory — the data behind Figs 1 and 2. It is the one-shot form
// of EvolutionVia over an uncached provider, and doubles as the
// correctness oracle for the event-log sweep: every date is rebuilt
// independently, with no delta state shared between points.
func Evolution(db *uls.Database, licensee string, path sites.Path, dates []uls.Date, opts Options) ([]EvolutionPoint, error) {
	return EvolutionVia(DirectProvider(db), licensee, path, dates, opts)
}

// EvolutionVia is Evolution over a SnapshotProvider. A provider that
// implements EvolutionSweeper (the snapshot engine) resolves the sweep
// as one linear pass over the event log; otherwise the per-date path
// runs — reconstructions are independent, so the provider may resolve
// them in parallel. Either way the per-date license counts come from
// the event log's prefix sums (O(log events) per point), not from
// re-deriving the full per-licensee activity map at every date.
func EvolutionVia(p SnapshotProvider, licensee string, path sites.Path, dates []uls.Date, opts Options) ([]EvolutionPoint, error) {
	if s, ok := p.(EvolutionSweeper); ok {
		return s.EvolutionSweep(licensee, path, dates, opts)
	}
	reqs := make([]SnapshotRequest, len(dates))
	for i, d := range dates {
		reqs[i] = SnapshotRequest{
			Licensees: []string{licensee},
			Date:      d,
			DCs:       []sites.DataCenter{path.From, path.To},
			Opts:      opts,
		}
	}
	nets, err := p.Snapshots(reqs)
	if err != nil {
		return nil, err
	}
	log := p.DB().EventLog()
	out := make([]EvolutionPoint, 0, len(dates))
	for i, d := range dates {
		pt := EvolutionPoint{Date: d, ActiveLicenses: log.ActiveCount(licensee, d)}
		if r, ok := nets[i].BestRoute(path); ok {
			pt.Connected = true
			pt.Latency = r.Latency
		}
		out = append(out, pt)
	}
	return out, nil
}

// PaperSampleDates returns the sampling dates of Figs 1 and 2: January
// 1st of each year from firstYear through lastYear, except that when
// lastYear is 2020 the final sample is April 1st (the paper's snapshot
// date).
func PaperSampleDates(firstYear, lastYear int) []uls.Date {
	var out []uls.Date
	for y := firstYear; y <= lastYear; y++ {
		if y == 2020 {
			out = append(out, uls.NewDate(2020, time.April, 1))
			continue
		}
		out = append(out, uls.NewDate(y, time.January, 1))
	}
	return out
}

// GridDates returns the sampling dates of an Evolution sweep on a
// denser grid than the paper's yearly samples: "yearly" is exactly
// PaperSampleDates, "monthly" is the 1st of every month, and "daily"
// is every calendar day. Like PaperSampleDates, a range reaching 2020
// stops at April 1st, the paper's corpus snapshot date.
func GridDates(firstYear, lastYear int, grid string) ([]uls.Date, error) {
	if lastYear < firstYear {
		return nil, fmt.Errorf("core: grid range %d–%d is empty", firstYear, lastYear)
	}
	end := uls.NewDate(lastYear, time.December, 31)
	if lastYear >= 2020 {
		end = uls.NewDate(2020, time.April, 1)
	}
	switch grid {
	case "yearly", "":
		return PaperSampleDates(firstYear, lastYear), nil
	case "monthly":
		var out []uls.Date
		for y := firstYear; y <= lastYear; y++ {
			for m := time.January; m <= time.December; m++ {
				d := uls.NewDate(y, m, 1)
				if d.After(end) {
					return out, nil
				}
				out = append(out, d)
			}
		}
		return out, nil
	case "daily":
		var out []uls.Date
		for d := uls.NewDate(firstYear, time.January, 1); !d.After(end); d = d.AddDays(1) {
			out = append(out, d)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: unknown grid %q (want daily, monthly, or yearly)", grid)
	}
}
