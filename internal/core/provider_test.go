package core

import (
	"testing"

	"hftnetview/internal/geo"
	"hftnetview/internal/graph"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// providerDB builds a small two-network database: a laddered licensee
// (connected, alternates) and a chain licensee.
func providerDB(t testing.TB) *uls.Database {
	t.Helper()
	db := uls.NewDatabase()
	buildLadderNetwork(t, db, "Ladder Net", 12, 2000, grant15, 11000, 6000)
	buildChainNetwork(t, db, "Chain Net", 10, grant15, uls.Date{}, 11000)
	return db
}

// TestTowerKeyBoundarySignConsistency is the regression test for the
// quantization fix: a tower exactly on a cell boundary and one just
// east of it (well within co-location tolerance) must merge into the
// same cell in both hemispheres. With round-half-away-from-zero they
// merged at +87.125° but split at -87.125° — the corridor's hemisphere.
func TestTowerKeyBoundarySignConsistency(t *testing.T) {
	// 87.125 is exactly representable in binary and ×100 lands exactly
	// on the .5 quantization boundary at two decimals.
	for _, lon := range []float64{87.125, -87.125} {
		onBoundary := towerKey(geo.Point{Lat: 40, Lon: lon}, 2)
		justEast := towerKey(geo.Point{Lat: 40, Lon: lon + 0.0001}, 2)
		if onBoundary != justEast {
			t.Errorf("lon %v: boundary key %q != just-east key %q (sign-dependent split)",
				lon, onBoundary, justEast)
		}
	}
}

// TestTowerKeyNoNegativeZero: coordinates rounding to zero must not
// produce a distinct "-0" key.
func TestTowerKeyNoNegativeZero(t *testing.T) {
	neg := towerKey(geo.Point{Lat: -0.00001, Lon: -0.00001}, 4)
	pos := towerKey(geo.Point{Lat: 0.00001, Lon: 0.00001}, 4)
	if neg != pos {
		t.Errorf("negative-zero key %q != positive key %q", neg, pos)
	}
	if neg != "0.0000,0.0000" {
		t.Errorf("zero-cell key = %q, want 0.0000,0.0000", neg)
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := DefaultOptions()
	if base.Fingerprint() != DefaultOptions().Fingerprint() {
		t.Fatal("equal options produced different fingerprints")
	}
	variants := []Options{
		{TowerMergeDecimals: 5, MaxFiberMeters: 50e3, FiberTailsPerDC: 1, StretchBound: 1.05},
		{TowerMergeDecimals: 4, MaxFiberMeters: 40e3, FiberTailsPerDC: 1, StretchBound: 1.05},
		{TowerMergeDecimals: 4, MaxFiberMeters: 50e3, FiberTailsPerDC: 0, StretchBound: 1.05},
		{TowerMergeDecimals: 4, MaxFiberMeters: 50e3, FiberTailsPerDC: 1, StretchBound: 1.10},
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for _, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("options %+v collide with a previous fingerprint %q", v, fp)
		}
		seen[fp] = true
	}
}

func TestNetworkCloneIndependence(t *testing.T) {
	db := providerDB(t)
	orig, err := Reconstruct(db, "Ladder Net", date20, sites.All, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r0, ok := orig.BestRoute(pathNY4)
	if !ok {
		t.Fatal("ladder network should be connected")
	}

	c := orig.Clone()
	// Mutate every exported surface of the clone.
	c.Towers[0].HeightMeters = -1
	c.Links[0].FrequenciesMHz[0] = -1
	c.Links[0].LengthMeters = 0
	if len(c.Fiber) > 0 {
		c.Fiber[0].LengthMeters = -1
	}
	// Disable every edge through the clone's graph.
	for i := 0; i < c.Graph().NumEdges(); i++ {
		c.Graph().SetDisabled(graph.EdgeID(i), true)
	}

	if orig.Towers[0].HeightMeters == -1 {
		t.Error("clone tower mutation reached the original")
	}
	if orig.Links[0].FrequenciesMHz[0] == -1 {
		t.Error("clone frequency mutation reached the original")
	}
	if len(orig.Fiber) > 0 && orig.Fiber[0].LengthMeters == -1 {
		t.Error("clone fiber mutation reached the original")
	}
	r1, ok := orig.BestRoute(pathNY4)
	if !ok {
		t.Fatal("original lost connectivity after clone graph mutation")
	}
	if r1.Latency != r0.Latency {
		t.Errorf("original route latency changed: %v -> %v", r0.Latency, r1.Latency)
	}
	if _, ok := c.BestRoute(pathNY4); ok {
		t.Error("clone should be disconnected after disabling all edges")
	}
}

// TestProviderVariantsAgree: the Via analyses over a DirectProvider must
// reproduce the one-shot results exactly.
func TestProviderVariantsAgree(t *testing.T) {
	db := providerDB(t)
	p := DirectProvider(db)
	direct, err := ConnectedNetworks(db, date20, pathNY4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	via, err := ConnectedNetworksVia(p, date20, pathNY4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(via) {
		t.Fatalf("Via rows = %d, direct rows = %d", len(via), len(direct))
	}
	for i := range direct {
		if direct[i].Licensee != via[i].Licensee || direct[i].Latency != via[i].Latency ||
			direct[i].APA != via[i].APA {
			t.Errorf("row %d differs: %+v vs %+v", i, direct[i], via[i])
		}
	}
}
