package core

import (
	"fmt"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/yamlx"
)

// The paper's tool "outputs the networks as human-readable YAML files,
// incorporating information about tower coordinates and heights, link
// lengths, and operating frequencies" (§1). This file implements that
// output format and its reader.

// ToYAML renders the reconstructed network as a YAML document.
func (n *Network) ToYAML() ([]byte, error) {
	doc := yamlx.NewMap().
		Set("licensee", n.Licensee).
		Set("date", n.Date.String()).
		Set("tower_count", len(n.Towers)).
		Set("link_count", len(n.Links))

	towers := make([]any, 0, len(n.Towers))
	for i, t := range n.Towers {
		towers = append(towers, yamlx.NewMap().
			Set("id", i).
			Set("lat", t.Point.Lat).
			Set("lon", t.Point.Lon).
			Set("height_m", t.HeightMeters))
	}
	doc.Set("towers", towers)

	links := make([]any, 0, len(n.Links))
	for _, l := range n.Links {
		freqs := make([]any, 0, len(l.FrequenciesMHz))
		for _, f := range l.FrequenciesMHz {
			freqs = append(freqs, f)
		}
		links = append(links, yamlx.NewMap().
			Set("from", l.From).
			Set("to", l.To).
			Set("call_sign", l.CallSign).
			Set("path", l.PathNumber).
			Set("length_km", roundTo(l.LengthMeters/1000, 3)).
			Set("latency_us", roundTo(l.Latency.Microseconds(), 3)).
			Set("frequencies_mhz", freqs))
	}
	doc.Set("links", links)

	fiber := make([]any, 0, len(n.Fiber))
	for _, f := range n.Fiber {
		fiber = append(fiber, yamlx.NewMap().
			Set("data_center", f.DataCenter.Code).
			Set("tower", f.Tower).
			Set("length_km", roundTo(f.LengthMeters/1000, 3)).
			Set("latency_us", roundTo(f.Latency.Microseconds(), 3)))
	}
	doc.Set("fiber_tails", fiber)

	return yamlx.Marshal(doc)
}

func roundTo(v float64, decimals int) float64 {
	scale := 1.0
	for i := 0; i < decimals; i++ {
		scale *= 10
	}
	return float64(int64(v*scale+0.5)) / scale
}

// NetworkFile is the parsed form of a network YAML document: the
// geometry and metadata without the reconstruction graph (reconstruct
// from the license database to run path queries).
type NetworkFile struct {
	Licensee string
	Date     string
	Towers   []TowerRecord
	Links    []LinkRecord
}

// TowerRecord is one tower entry of a network YAML file.
type TowerRecord struct {
	ID      int
	Point   geo.Point
	HeightM float64
}

// LinkRecord is one link entry of a network YAML file.
type LinkRecord struct {
	From, To       int
	CallSign       string
	PathNumber     int
	LengthKM       float64
	LatencyUS      float64
	FrequenciesMHz []float64
}

// ParseNetworkYAML reads a document produced by ToYAML.
func ParseNetworkYAML(data []byte) (*NetworkFile, error) {
	v, err := yamlx.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	doc, ok := v.(*yamlx.Map)
	if !ok {
		return nil, fmt.Errorf("core: network YAML root is not a mapping")
	}
	nf := &NetworkFile{}
	if s, ok := getString(doc, "licensee"); ok {
		nf.Licensee = s
	} else {
		return nil, fmt.Errorf("core: network YAML missing licensee")
	}
	nf.Date, _ = getString(doc, "date")

	towers, _ := doc.Get("towers")
	towerSeq, _ := towers.([]any)
	for i, item := range towerSeq {
		m, ok := item.(*yamlx.Map)
		if !ok {
			return nil, fmt.Errorf("core: tower %d is not a mapping", i)
		}
		id, _ := getInt(m, "id")
		lat, okLat := getFloat(m, "lat")
		lon, okLon := getFloat(m, "lon")
		if !okLat || !okLon {
			return nil, fmt.Errorf("core: tower %d missing coordinates", i)
		}
		h, _ := getFloat(m, "height_m")
		nf.Towers = append(nf.Towers, TowerRecord{
			ID: int(id), Point: geo.Point{Lat: lat, Lon: lon}, HeightM: h,
		})
	}

	links, _ := doc.Get("links")
	linkSeq, _ := links.([]any)
	for i, item := range linkSeq {
		m, ok := item.(*yamlx.Map)
		if !ok {
			return nil, fmt.Errorf("core: link %d is not a mapping", i)
		}
		from, okF := getInt(m, "from")
		to, okT := getInt(m, "to")
		if !okF || !okT {
			return nil, fmt.Errorf("core: link %d missing endpoints", i)
		}
		if int(from) >= len(nf.Towers) || int(to) >= len(nf.Towers) || from < 0 || to < 0 {
			return nil, fmt.Errorf("core: link %d references unknown tower", i)
		}
		lr := LinkRecord{From: int(from), To: int(to)}
		lr.CallSign, _ = getString(m, "call_sign")
		if p, ok := getInt(m, "path"); ok {
			lr.PathNumber = int(p)
		}
		lr.LengthKM, _ = getFloat(m, "length_km")
		lr.LatencyUS, _ = getFloat(m, "latency_us")
		if fs, ok := m.Get("frequencies_mhz"); ok {
			if seq, ok := fs.([]any); ok {
				for _, f := range seq {
					if fv, ok := toFloat(f); ok {
						lr.FrequenciesMHz = append(lr.FrequenciesMHz, fv)
					}
				}
			}
		}
		nf.Links = append(nf.Links, lr)
	}
	return nf, nil
}

// NetworkFromFile rebuilds an analyzable Network from a parsed YAML
// network file: downstream users of the published files can run every
// path/APA/CDF analysis without access to the license database. Link
// latencies are recomputed from the tower coordinates (the file's
// rounded lengths are informational).
func NetworkFromFile(nf *NetworkFile, dcs []sites.DataCenter, opts Options) (*Network, error) {
	if opts.TowerMergeDecimals <= 0 || opts.MaxFiberMeters <= 0 || opts.StretchBound <= 1 {
		return nil, fmt.Errorf("core: invalid options %+v", opts)
	}
	date, err := uls.ParseDate(nf.Date)
	if err != nil {
		return nil, fmt.Errorf("core: network file date: %w", err)
	}
	links := make([]uls.Link, 0, len(nf.Links))
	for _, lr := range nf.Links {
		if lr.From < 0 || lr.From >= len(nf.Towers) ||
			lr.To < 0 || lr.To >= len(nf.Towers) {
			return nil, fmt.Errorf("core: link references unknown tower %d-%d",
				lr.From, lr.To)
		}
		links = append(links, uls.Link{
			CallSign:   lr.CallSign,
			Licensee:   nf.Licensee,
			PathNumber: lr.PathNumber,
			TX: uls.Location{Number: 1, Point: nf.Towers[lr.From].Point,
				SupportHeight: nf.Towers[lr.From].HeightM},
			RX: uls.Location{Number: 2, Point: nf.Towers[lr.To].Point,
				SupportHeight: nf.Towers[lr.To].HeightM},
			FrequenciesMHz: lr.FrequenciesMHz,
		})
	}
	return reconstructLinks(links, nf.Licensee, date, dcs, opts)
}

func getString(m *yamlx.Map, key string) (string, bool) {
	v, ok := m.Get(key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

func getInt(m *yamlx.Map, key string) (int64, bool) {
	v, ok := m.Get(key)
	if !ok {
		return 0, false
	}
	i, ok := v.(int64)
	return i, ok
}

func getFloat(m *yamlx.Map, key string) (float64, bool) {
	v, ok := m.Get(key)
	if !ok {
		return 0, false
	}
	return toFloat(v)
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	}
	return 0, false
}
