package core

import (
	"hftnetview/internal/radio"
	"hftnetview/internal/sites"
)

// routeHops converts the best route's links into radio hops at each
// link's most robust (lowest) channel.
func (n *Network) routeHops(path sites.Path) ([]radio.Hop, bool) {
	r, ok := n.BestRoute(path)
	if !ok {
		return nil, false
	}
	hops := make([]radio.Hop, 0, len(r.LinkIndexes))
	for _, li := range r.LinkIndexes {
		l := n.Links[li]
		hops = append(hops, radio.Hop{
			FreqGHz: linkFrequencyGHz(l),
			PathKM:  l.LengthMeters / 1000,
		})
	}
	return hops, true
}

// RainAvailability returns the annual availability of the network's
// lowest-latency route under rain fades (ITU-R P.530-style scaling from
// the corridor's 0.01%-exceeded rain rate).
func (n *Network) RainAvailability(path sites.Path, marginDB float64) (float64, bool) {
	hops, ok := n.routeHops(path)
	if !ok {
		return 0, false
	}
	return radio.PathRainAvailability(hops, marginDB, radio.R001CorridorMMH), true
}

// ClearAirAvailability returns the worst-month availability of the
// network's lowest-latency route under clear-air multipath fading
// (Vigants–Barnett, average climate): the §6 tradeoff — link length
// cubed, frequency linear — evaluated over the route's actual hops.
// ok is false when the network has no route for the path.
func (n *Network) ClearAirAvailability(path sites.Path, marginDB float64) (float64, bool) {
	hops, ok := n.routeHops(path)
	if !ok {
		return 0, false
	}
	return radio.PathAvailability(hops, marginDB, radio.ClimateAverage), true
}
