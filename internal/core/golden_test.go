package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hftnetview/internal/uls"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestNetworkYAMLGolden pins the published YAML format: any accidental
// format change (field order, rounding, quoting) breaks downstream
// consumers of the data files and must be deliberate.
func TestNetworkYAMLGolden(t *testing.T) {
	db := uls.NewDatabase()
	buildChainNetwork(t, db, "Golden Net", 5, grant15, uls.Date{}, 11245)
	n := reconstructOrDie(t, db, "Golden Net", date20)
	got, err := n.ToYAML()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "network_golden.yaml")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("YAML output changed; if intentional, rerun with -update.\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}
