package core

import (
	"runtime"
	"sync"

	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
)

// SnapshotRequest identifies one reconstruction: a licensee set (a
// union network when more than one name is given), the as-of date, the
// data centers to attach fiber tails for, and the options. It is the
// cache-key domain of the snapshot engine: two requests that normalize
// to the same (licensee set, date, DC set, options fingerprint)
// describe the same snapshot.
type SnapshotRequest struct {
	// Licensees names the filing entities whose licenses form the
	// network; one entry is the common single-licensee case, and the
	// empty string means every licensee in the database.
	Licensees []string
	Date      uls.Date
	DCs       []sites.DataCenter
	Opts      Options
}

// SnapshotProvider supplies reconstructed network snapshots. The
// one-shot DirectProvider rebuilds on every call; the snapshot engine
// (internal/engine) memoizes, coalesces concurrent requests, and fans
// batches out across a bounded worker pool. Implementations must be
// safe for concurrent use and must return networks the caller may
// freely mutate.
type SnapshotProvider interface {
	// DB returns the license database the snapshots are built from.
	DB() *uls.Database
	// Snapshot returns the network described by the request.
	Snapshot(req SnapshotRequest) (*Network, error)
	// Snapshots resolves a batch of requests, in order; independent
	// reconstructions may proceed in parallel. It fails on the first
	// error encountered.
	Snapshots(reqs []SnapshotRequest) ([]*Network, error)
}

// directProvider is the uncached SnapshotProvider: every Snapshot call
// reconstructs from the database.
type directProvider struct {
	db *uls.Database
}

// DirectProvider returns an uncached SnapshotProvider over db. It is
// the baseline the memoizing engine is benchmarked against and the
// backend of the one-shot analysis functions.
func DirectProvider(db *uls.Database) SnapshotProvider {
	return &directProvider{db: db}
}

func (p *directProvider) DB() *uls.Database { return p.db }

func (p *directProvider) Snapshot(req SnapshotRequest) (*Network, error) {
	if len(req.Licensees) > 1 {
		return ReconstructUnion(p.db, req.Licensees, req.Date, req.DCs, req.Opts)
	}
	name := ""
	if len(req.Licensees) == 1 {
		name = req.Licensees[0]
	}
	return Reconstruct(p.db, name, req.Date, req.DCs, req.Opts)
}

func (p *directProvider) Snapshots(reqs []SnapshotRequest) ([]*Network, error) {
	return SnapshotsParallel(p, reqs)
}

// SnapshotsParallel resolves reqs through p.Snapshot with a bounded
// worker pool, preserving request order. Providers whose Snapshot is
// concurrency-safe can use it as their Snapshots implementation.
func SnapshotsParallel(p SnapshotProvider, reqs []SnapshotRequest) ([]*Network, error) {
	nets := make([]*Network, len(reqs))
	errs := make([]error, len(reqs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				nets[i], errs[i] = p.Snapshot(reqs[i])
			}
		}()
	}
	for i := range reqs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nets, nil
}
