// Package fresnel implements microwave line-of-sight feasibility: first
// Fresnel zone clearance and k-factor Earth-bulge, the physics that
// forces the tall towers the paper's licenses record. The §6 tradeoff —
// "longer links allow cheaper builds using fewer towers, but are also
// less reliable" — has a sibling constraint: longer links also need
// taller towers to clear the Earth's curvature.
package fresnel

import "math"

// StandardK is the median effective Earth-radius factor (4/3) used for
// microwave path design.
const StandardK = 4.0 / 3.0

// earthRadiusM is the mean Earth radius used for bulge computation.
const earthRadiusM = 6371008.8

// FirstZoneRadius returns the first Fresnel zone radius in meters at a
// point d1 meters from one end and d2 from the other, for a carrier at
// freqGHz. (F1 = 17.32·√(d1·d2/(f·d)) with distances in km.)
func FirstZoneRadius(d1M, d2M, freqGHz float64) float64 {
	if d1M <= 0 || d2M <= 0 || freqGHz <= 0 {
		return 0
	}
	d1, d2 := d1M/1000, d2M/1000
	return 17.32 * math.Sqrt(d1*d2/(freqGHz*(d1+d2)))
}

// EarthBulge returns the effective Earth bulge in meters at a point d1/d2
// meters from the ends, under effective-radius factor k.
func EarthBulge(d1M, d2M, k float64) float64 {
	if d1M <= 0 || d2M <= 0 {
		return 0
	}
	if k <= 0 {
		k = StandardK
	}
	return d1M * d2M / (2 * k * earthRadiusM)
}

// ClearanceRule is the fraction of the first Fresnel zone that must stay
// unobstructed; 0.6 F1 is the standard fixed-link design rule.
const ClearanceRule = 0.6

// RequiredClearance returns the height in meters the radio path must
// clear above smooth terrain at a point: Earth bulge plus 0.6 F1.
func RequiredClearance(d1M, d2M, freqGHz, k float64) float64 {
	return EarthBulge(d1M, d2M, k) + ClearanceRule*FirstZoneRadius(d1M, d2M, freqGHz)
}

// MinAntennaHeight returns the minimum equal antenna height (meters
// above smooth terrain) for a link of pathM meters at freqGHz: with
// equal heights the worst point is mid-path, where the straight ray sits
// at antenna height.
func MinAntennaHeight(pathM, freqGHz, k float64) float64 {
	return RequiredClearance(pathM/2, pathM/2, freqGHz, k)
}

// feasibilitySamples is the along-path sampling density of LinkFeasible.
const feasibilitySamples = 32

// LinkFeasible reports whether a link of pathM meters with antenna
// heights hTxM and hRxM (above smooth terrain) maintains 0.6 F1
// clearance along its whole length at freqGHz under k-factor k.
func LinkFeasible(hTxM, hRxM, pathM, freqGHz, k float64) bool {
	if pathM <= 0 {
		return true
	}
	for i := 1; i < feasibilitySamples; i++ {
		d1 := pathM * float64(i) / feasibilitySamples
		d2 := pathM - d1
		rayHeight := hTxM + (hRxM-hTxM)*d1/pathM
		if rayHeight < RequiredClearance(d1, d2, freqGHz, k) {
			return false
		}
	}
	return true
}

// MaxPathForHeights returns the longest feasible link (meters) for equal
// antenna heights hM at freqGHz under k, found by bisection. It answers
// the §6 build-cost question directly: given h-meter towers, how far
// apart can they stand?
func MaxPathForHeights(hM, freqGHz, k float64) float64 {
	lo, hi := 0.0, 500e3
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if LinkFeasible(hM, hM, mid, freqGHz, k) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
