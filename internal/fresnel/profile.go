package fresnel

import "hftnetview/internal/geo"

// PathProfile is a precomputed terrain profile of one link, ready for
// repeated clearance queries (the bisection in RequiredEqualHeight asks
// many times).
type PathProfile struct {
	// TotalM is the link length.
	TotalM float64
	// DistM[i] is the along-path distance of interior sample i; ElevM[i]
	// its terrain elevation (meters ASL).
	DistM []float64
	ElevM []float64
	// ElevA and ElevB are the terrain elevations at the endpoints.
	ElevA, ElevB float64
}

// NewPathProfile samples the terrain along a→b at n interior points
// using the supplied elevation model.
func NewPathProfile(a, b geo.Point, elev func(geo.Point) float64, n int) PathProfile {
	p := PathProfile{
		TotalM: geo.Distance(a, b),
		DistM:  make([]float64, n),
		ElevM:  make([]float64, n),
		ElevA:  elev(a),
		ElevB:  elev(b),
	}
	for i := 0; i < n; i++ {
		t := (float64(i) + 0.5) / float64(n)
		p.DistM[i] = p.TotalM * t
		p.ElevM[i] = elev(geo.Interpolate(a, b, t))
	}
	return p
}

// Feasible reports whether antennas at hA and hB meters above their
// ground clear terrain plus Earth bulge plus 0.6 F1 along the whole
// profile at freqGHz under k-factor k.
func (p PathProfile) Feasible(hA, hB, freqGHz, k float64) bool {
	if p.TotalM <= 0 {
		return true
	}
	endA := p.ElevA + hA
	endB := p.ElevB + hB
	for i, d1 := range p.DistM {
		d2 := p.TotalM - d1
		ray := endA + (endB-endA)*d1/p.TotalM
		need := p.ElevM[i] + RequiredClearance(d1, d2, freqGHz, k)
		if ray < need {
			return false
		}
	}
	return true
}

// RequiredEqualHeight returns the minimum equal antenna height (meters
// above ground at each end) that makes the profile feasible, by
// bisection up to maxH. When even maxH does not clear (a ridge towers
// over both ends), maxH is returned.
func (p PathProfile) RequiredEqualHeight(freqGHz, k, maxH float64) float64 {
	if p.Feasible(0, 0, freqGHz, k) {
		return 0
	}
	if !p.Feasible(maxH, maxH, freqGHz, k) {
		return maxH
	}
	lo, hi := 0.0, maxH
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if p.Feasible(mid, mid, freqGHz, k) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
