package fresnel_test

import (
	"testing"

	"hftnetview/internal/fresnel"
	"hftnetview/internal/synth"
	"hftnetview/internal/terrain"
)

// TestCorpusLinksAreLoSFeasible ties the physics to the corpus: every
// generated license's hop must clear the synthetic terrain — Earth
// bulge, ridges, and 0.6 F1 at 6 GHz — with its filed tower heights;
// otherwise the synthetic corridor would be unbuildable.
func TestCorpusLinksAreLoSFeasible(t *testing.T) {
	db, err := synth.Generate()
	if err != nil {
		t.Fatal(err)
	}
	checked, infeasible := 0, 0
	maxHeight := 0.0
	for _, l := range db.All() {
		for _, lk := range l.Links() {
			prof := fresnel.NewPathProfile(lk.TX.Point, lk.RX.Point,
				terrain.Elevation, 12)
			if !prof.Feasible(lk.TX.SupportHeight, lk.RX.SupportHeight,
				6, fresnel.StandardK) {
				infeasible++
				if infeasible <= 5 {
					t.Errorf("%s: %.1f km link with %.0f/%.0f m towers does not clear terrain",
						l.CallSign, lk.LengthMeters()/1000,
						lk.TX.SupportHeight, lk.RX.SupportHeight)
				}
			}
			if lk.TX.SupportHeight > maxHeight {
				maxHeight = lk.TX.SupportHeight
			}
			checked++
		}
	}
	if infeasible > 0 {
		t.Fatalf("%d of %d links infeasible", infeasible, checked)
	}
	if checked < 1000 {
		t.Fatalf("only %d links checked", checked)
	}
	// Filed structures stay within real-world mast heights.
	if maxHeight > 480 {
		t.Errorf("max filed height %.0f m implausible", maxHeight)
	}
}

// TestTerrainActuallyConstrains: over the Appalachian belt, terrain must
// force some towers above the smooth-Earth minimum — otherwise the
// terrain model is decorative.
func TestTerrainActuallyConstrains(t *testing.T) {
	db, err := synth.Generate()
	if err != nil {
		t.Fatal(err)
	}
	raised := 0
	for _, l := range db.All() {
		for _, lk := range l.Links() {
			flat := fresnel.MinAntennaHeight(lk.LengthMeters(), 6, fresnel.StandardK)
			prof := fresnel.NewPathProfile(lk.TX.Point, lk.RX.Point,
				terrain.Elevation, 12)
			req := prof.RequiredEqualHeight(6, fresnel.StandardK, 420)
			if req > flat+15 {
				raised++
			}
		}
	}
	if raised < 20 {
		t.Errorf("terrain raised only %d links; ridges should matter", raised)
	}
}
