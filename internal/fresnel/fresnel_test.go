package fresnel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFirstZoneRadiusKnownValues(t *testing.T) {
	// Mid-path of a 50 km link at 6 GHz:
	// F1 = 17.32·√(25·25/(6·50)) = 17.32·√2.0833 ≈ 25.0 m.
	if got := FirstZoneRadius(25e3, 25e3, 6); math.Abs(got-25.0) > 0.1 {
		t.Errorf("F1(25, 25, 6 GHz) = %.2f, want ≈25.0", got)
	}
	// Higher frequency → smaller zone.
	if FirstZoneRadius(25e3, 25e3, 11) >= FirstZoneRadius(25e3, 25e3, 6) {
		t.Error("F1 should shrink with frequency")
	}
	// Degenerate inputs.
	if FirstZoneRadius(0, 25e3, 6) != 0 || FirstZoneRadius(25e3, 25e3, 0) != 0 {
		t.Error("degenerate F1 should be 0")
	}
}

func TestEarthBulgeKnownValues(t *testing.T) {
	// Mid-path of a 56 km link, k = 4/3:
	// h = 28e3²/(2·(4/3)·6371e3) ≈ 46.2 m.
	if got := EarthBulge(28e3, 28e3, StandardK); math.Abs(got-46.2) > 0.5 {
		t.Errorf("bulge(28/28, 4/3) = %.1f, want ≈46.2", got)
	}
	// Sub-refractive conditions (k < 1) raise the bulge.
	if EarthBulge(28e3, 28e3, 0.8) <= EarthBulge(28e3, 28e3, StandardK) {
		t.Error("smaller k should raise the bulge")
	}
	// k <= 0 falls back to the standard factor.
	if EarthBulge(28e3, 28e3, 0) != EarthBulge(28e3, 28e3, StandardK) {
		t.Error("k fallback missing")
	}
}

func TestBulgeSymmetryAndPeak(t *testing.T) {
	f := func(aKM, bKM float64) bool {
		a := math.Mod(math.Abs(aKM), 50) * 1000
		b := math.Mod(math.Abs(bKM), 50) * 1000
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return math.Abs(EarthBulge(a, b, StandardK)-EarthBulge(b, a, StandardK)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// The bulge peaks mid-path.
	total := 50e3
	mid := EarthBulge(total/2, total/2, StandardK)
	for _, frac := range []float64{0.1, 0.25, 0.4} {
		d1 := total * frac
		if EarthBulge(d1, total-d1, StandardK) >= mid {
			t.Errorf("bulge at %.0f%% not below mid-path", frac*100)
		}
	}
}

func TestMinAntennaHeightCorridorScale(t *testing.T) {
	// The numbers that make 50 km corridor hops need ~60 m towers.
	h6 := MinAntennaHeight(56e3, 6, StandardK)
	if h6 < 55 || h6 > 70 {
		t.Errorf("min height 56 km @ 6 GHz = %.1f m, want ≈62", h6)
	}
	h11 := MinAntennaHeight(56e3, 11, StandardK)
	if h11 >= h6 {
		t.Error("11 GHz needs less Fresnel clearance than 6 GHz")
	}
	// Short rungs barely need height.
	if h := MinAntennaHeight(3e3, 6, StandardK); h > 10 {
		t.Errorf("3 km rung min height = %.1f m, want < 10", h)
	}
}

func TestLinkFeasible(t *testing.T) {
	// 56 km at 6 GHz with 65 m towers: feasible.
	if !LinkFeasible(65, 65, 56e3, 6, StandardK) {
		t.Error("65 m towers should clear 56 km at 6 GHz")
	}
	// With 40 m towers: infeasible.
	if LinkFeasible(40, 40, 56e3, 6, StandardK) {
		t.Error("40 m towers should not clear 56 km at 6 GHz")
	}
	// Asymmetric heights: a tall end can lift the ray over the worst
	// point of a shorter link.
	if !LinkFeasible(120, 60, 50e3, 6, StandardK) {
		t.Error("120/60 m should clear 50 km")
	}
	if LinkFeasible(0, 0, 30e3, 6, StandardK) {
		t.Error("ground-level antennas cannot clear 30 km")
	}
	if !LinkFeasible(10, 10, 0, 6, StandardK) {
		t.Error("zero-length path is trivially feasible")
	}
}

func TestMaxPathForHeights(t *testing.T) {
	// Monotone in height.
	prev := 0.0
	for _, h := range []float64{20, 40, 65, 100, 150} {
		d := MaxPathForHeights(h, 6, StandardK)
		if d <= prev {
			t.Errorf("max path not monotone at h=%v", h)
		}
		prev = d
	}
	// 65 m at 6 GHz reaches at least the corridor's 56 km hops but not
	// the paper's 100 km "too inefficient" bound.
	d := MaxPathForHeights(65, 6, StandardK)
	if d < 56e3 || d > 100e3 {
		t.Errorf("max path for 65 m towers = %.1f km, want 56-100", d/1000)
	}
	// Consistency with LinkFeasible at the boundary.
	if !LinkFeasible(65, 65, d-10, 6, StandardK) {
		t.Error("just under the max should be feasible")
	}
	if LinkFeasible(65, 65, d+100, 6, StandardK) {
		t.Error("just over the max should be infeasible")
	}
}
