package uls

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Fault-tolerant ingestion.
//
// Real ULS extracts are dirty: truncated downloads lose newlines,
// filings contradict each other, and speculative licenses reference
// paths that were never built. ReadBulkWithOptions parses such streams
// under an explicit policy (ParseMode), classifies every failure into a
// small taxonomy (ErrorClass), and accounts for everything it skipped
// or quarantined in a deterministic IngestReport — the same input under
// the same options always yields the same report, so salvage runs are
// reproducible and diffable.

// ParseMode selects how ReadBulkWithOptions reacts to malformed input.
type ParseMode int

const (
	// Strict aborts on the first malformed record (classic ReadBulk).
	Strict ParseMode = iota
	// Lenient skips malformed records and salvages the rest of each
	// license, repairing cross-record fallout (e.g. a path whose
	// location record was skipped) by dropping only the inconsistent
	// sub-records.
	Lenient
	// DropLicense quarantines every license that produced at least one
	// record error, keeping only licenses whose records all parsed.
	DropLicense
)

func (m ParseMode) String() string {
	switch m {
	case Strict:
		return "strict"
	case Lenient:
		return "lenient"
	case DropLicense:
		return "drop-license"
	default:
		return fmt.Sprintf("ParseMode(%d)", int(m))
	}
}

// ErrorClass is the coarse taxonomy of record failures.
type ErrorClass string

const (
	// ClassSyntax: the line or field cannot be decoded at all (wrong
	// arity, unparsable number/date/coordinate, overlong line).
	ClassSyntax ErrorClass = "syntax"
	// ClassRange: the value decodes but is outside its legal domain
	// (unknown status, non-positive frequency, coordinate off the
	// globe or outside the configured bounds).
	ClassRange ErrorClass = "range"
	// ClassReferential: the record points at something that does not
	// exist (no HD yet, FR naming a path never filed, PA naming a
	// missing location).
	ClassReferential ErrorClass = "referential"
	// ClassDuplicate: the record re-files something already on record
	// (second HD or EN for a call sign, repeated location number).
	ClassDuplicate ErrorClass = "duplicate"
)

// classOf extracts the taxonomy class from a record error; unclassed
// errors default to ClassSyntax (the safest "could not decode" bucket).
func classOf(err error) ErrorClass {
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	return ClassSyntax
}

// RecordError is one classified record failure. Line is 0 for
// cross-record issues found after the stream ended (audit/repair),
// which have no single line to blame.
type RecordError struct {
	Line       int
	CallSign   string // empty when the line could not be attributed
	RecordType string // HD/EN/LO/PA/FR, or "??" when unrecognized
	Class      ErrorClass
	Err        error
}

func (e RecordError) Error() string {
	where := "post-parse"
	if e.Line > 0 {
		where = fmt.Sprintf("line %d", e.Line)
	}
	cs := e.CallSign
	if cs == "" {
		cs = "-"
	}
	return fmt.Sprintf("%s: %s %s [%s]: %v", where, cs, e.RecordType, e.Class, e.Err)
}

func (e RecordError) Unwrap() error { return e.Err }

// ErrBudgetExceeded is wrapped by the error ReadBulkWithOptions returns
// when the stream blows its error budget (see ReadBulkOptions.MaxErrorRate).
var ErrBudgetExceeded = errors.New("uls: ingest error budget exceeded")

// ReadBulkOptions configures fault-tolerant parsing.
type ReadBulkOptions struct {
	// Mode is the malformed-record policy. The zero value is Strict.
	Mode ParseMode

	// MaxErrorRate is the error budget: if, in a non-strict mode, more
	// than this fraction of record lines are bad, parsing aborts with
	// an error wrapping ErrBudgetExceeded — a corpus that corrupt is
	// more likely the wrong file than a salvage candidate. 0 disables
	// the budget.
	MaxErrorRate float64

	// Bounds, when non-nil, makes locations outside the box a Range
	// issue during the post-parse audit (repaired modes drop the
	// location and everything referencing it).
	Bounds *Bounds
}

// maxReportErrors caps how many RecordErrors the report retains
// verbatim; counts (BadLines, ByClass, ByType) keep accumulating past
// the cap so adversarial input cannot balloon the report.
const maxReportErrors = 100

// budgetMinSample is how many record lines must be seen before the
// error budget can abort mid-stream (the final end-of-stream check is
// unconditional). The window must be generous: one corrupted HD line
// cascades into referential errors for every following record of its
// license, so small prefixes over-estimate the corpus-wide error rate.
const budgetMinSample = 1000

// IngestReport is the deterministic account of a ReadBulkWithOptions
// run: identical input and options produce an identical report.
type IngestReport struct {
	Mode        ParseMode
	Lines       int // physical lines seen (including blanks/comments)
	RecordLines int // lines that should have held a record
	BadLines    int // record lines rejected
	Repaired    int // sub-records dropped by post-parse repair

	LicensesLoaded int      // licenses that made it into the database
	Quarantined    []string // call signs dropped whole, sorted

	Errors          []RecordError // first maxReportErrors failures, in order
	ErrorsTruncated bool          // true if Errors hit the cap
	ByClass         map[ErrorClass]int
	ByType          map[string]int

	quarantineReason map[string]string
}

func newIngestReport(mode ParseMode) *IngestReport {
	return &IngestReport{
		Mode:             mode,
		ByClass:          make(map[ErrorClass]int),
		ByType:           make(map[string]int),
		quarantineReason: make(map[string]string),
	}
}

// record files one failure into the report's taxonomy.
func (r *IngestReport) record(e RecordError) {
	if e.Line > 0 {
		r.BadLines++
	}
	r.ByClass[e.Class]++
	r.ByType[e.RecordType]++
	if len(r.Errors) < maxReportErrors {
		r.Errors = append(r.Errors, e)
	} else {
		r.ErrorsTruncated = true
	}
}

func (r *IngestReport) quarantine(cs, reason string) {
	if _, dup := r.quarantineReason[cs]; dup {
		return
	}
	r.quarantineReason[cs] = reason
	r.Quarantined = append(r.Quarantined, cs)
}

// ErrorRate is BadLines over RecordLines (0 for an empty stream).
func (r *IngestReport) ErrorRate() float64 {
	if r.RecordLines == 0 {
		return 0
	}
	return float64(r.BadLines) / float64(r.RecordLines)
}

// String renders the report as a small deterministic block, suitable
// for terminals and golden tests.
func (r *IngestReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ingest: mode=%s lines=%d records=%d bad=%d (%.1f%%) repaired=%d loaded=%d quarantined=%d\n",
		r.Mode, r.Lines, r.RecordLines, r.BadLines, 100*r.ErrorRate(),
		r.Repaired, r.LicensesLoaded, len(r.Quarantined))
	if len(r.ByClass) > 0 {
		keys := make([]string, 0, len(r.ByClass))
		for k := range r.ByClass {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		b.WriteString("  by class:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.ByClass[ErrorClass(k)])
		}
		b.WriteByte('\n')
	}
	if len(r.ByType) > 0 {
		keys := make([]string, 0, len(r.ByType))
		for k := range r.ByType {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  by type:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.ByType[k])
		}
		b.WriteByte('\n')
	}
	const maxListed = 10
	for i, cs := range r.Quarantined {
		if i == maxListed {
			fmt.Fprintf(&b, "  quarantined ... %d more (WriteQuarantine lists all)\n",
				len(r.Quarantined)-maxListed)
			break
		}
		fmt.Fprintf(&b, "  quarantined %s: %s\n", cs, r.quarantineReason[cs])
	}
	return b.String()
}

// WriteQuarantine writes one tab-separated "call_sign<TAB>reason" line
// per quarantined license, sorted by call sign.
func (r *IngestReport) WriteQuarantine(w io.Writer) error {
	for _, cs := range r.Quarantined {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", cs, r.quarantineReason[cs]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBulkWithOptions parses a bulk stream under the given
// fault-tolerance policy. The report is never nil. In Strict mode the
// behaviour (and error values) match ReadBulk exactly, except that an
// overlong line now surfaces as a located *ParseError instead of an
// anonymous scanner failure. In Lenient and DropLicense modes the
// returned error is non-nil only for stream I/O failures or a blown
// error budget.
func ReadBulkWithOptions(r io.Reader, opts ReadBulkOptions) (*Database, *IngestReport, error) {
	rep := newIngestReport(opts.Mode)
	db := NewDatabase()
	// open tracks licenses being assembled; they are audited and added
	// once the whole stream is read (records may interleave).
	open := make(map[string]*openLicense)
	var order []string
	// doomed marks call signs DropLicense must quarantine even if the
	// offending record arrived before (or instead of) their HD.
	doomed := make(map[string]bool)

	fail := func(e RecordError, line string) error {
		rep.record(e)
		if opts.Mode == Strict {
			return &ParseError{Line: e.Line, Text: line, Err: e.Err}
		}
		if e.CallSign != "" {
			if opts.Mode == DropLicense {
				doomed[e.CallSign] = true
			}
			if ol, ok := open[e.CallSign]; ok {
				ol.erred = true
			}
		}
		if err := rep.checkBudget(opts, false); err != nil {
			return err
		}
		return nil
	}

	lr := newLineReader(r)
	for {
		text, lineNo, tooLong, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, rep, fmt.Errorf("uls: reading bulk stream: %w", err)
		}
		rep.Lines = lineNo
		line := strings.TrimRight(text, "\r")
		if !tooLong && (line == "" || strings.HasPrefix(line, "#")) {
			continue
		}
		rep.RecordLines++
		if tooLong {
			e := RecordError{
				Line: lineNo, RecordType: sanitizeType(firstField(line)),
				Class: ClassSyntax,
				Err:   fmt.Errorf("line exceeds %d bytes", maxLineBytes),
			}
			if err := fail(e, line); err != nil {
				return nil, rep, err
			}
			continue
		}
		cs, typ, perr := parseBulkLine(line, lineNo, open, &order)
		if perr != nil {
			e := RecordError{Line: lineNo, CallSign: cs, RecordType: typ, Class: classOf(perr), Err: perr}
			if err := fail(e, line); err != nil {
				return nil, rep, err
			}
		}
	}

	// Resolve FRs that preceded their PA record. Whatever is still
	// unresolved references a path that never appeared: in Strict the
	// earliest such line aborts (with the classic message); otherwise
	// each is a Referential record error against its license.
	var unresolved []struct {
		cs string
		fr pendingFR
	}
	for _, cs := range order {
		ol := open[cs]
		for _, p := range ol.pending {
			if !attachFR(ol.l, p.path, p.freq) {
				unresolved = append(unresolved, struct {
					cs string
					fr pendingFR
				}{cs, p})
			}
		}
		ol.pending = nil
	}
	sort.Slice(unresolved, func(i, j int) bool { return unresolved[i].fr.line < unresolved[j].fr.line })
	for _, u := range unresolved {
		e := RecordError{
			Line: u.fr.line, CallSign: u.cs, RecordType: "FR", Class: ClassReferential,
			Err: cerrf(ClassReferential, "FR record for unknown path %d", u.fr.path),
		}
		// Already counted in RecordLines; BadLines via record().
		if err := fail(e, u.fr.text); err != nil {
			return nil, rep, err
		}
	}

	if err := rep.checkBudget(opts, true); err != nil {
		return nil, rep, err
	}

	// Close out every license: quarantine, repair, then add.
	for _, cs := range order {
		ol := open[cs]
		if opts.Mode == DropLicense && (ol.erred || doomed[cs]) {
			rep.quarantine(cs, "license had record errors")
			continue
		}
		if opts.Mode != Strict {
			issues := auditLicense(ol.l, opts.Bounds, true)
			for _, is := range issues {
				rep.record(is.toRecordError(cs))
				if is.repaired {
					rep.Repaired++
				}
			}
		}
		if err := db.Add(ol.l); err != nil {
			if opts.Mode == Strict {
				return nil, rep, err
			}
			rep.record(RecordError{CallSign: cs, RecordType: "HD", Class: ClassReferential, Err: err})
			rep.quarantine(cs, err.Error())
			continue
		}
		rep.LicensesLoaded++
	}
	// DropLicense may doom call signs whose HD never parsed; surface
	// them in the quarantine list too.
	for cs := range doomed {
		if _, ok := open[cs]; !ok {
			rep.quarantine(cs, "license had record errors")
		}
	}
	sort.Strings(rep.Quarantined)
	return db, rep, nil
}

// checkBudget aborts a non-strict parse whose bad-line fraction exceeds
// MaxErrorRate. Mid-stream (final=false) it waits for budgetMinSample
// record lines so a single early error cannot trip it.
func (r *IngestReport) checkBudget(opts ReadBulkOptions, final bool) error {
	if opts.Mode == Strict || opts.MaxErrorRate <= 0 {
		return nil
	}
	if !final && r.RecordLines < budgetMinSample {
		return nil
	}
	if r.ErrorRate() > opts.MaxErrorRate {
		return fmt.Errorf("%w: %d of %d record lines bad (%.1f%% > %.1f%%)",
			ErrBudgetExceeded, r.BadLines, r.RecordLines,
			100*r.ErrorRate(), 100*opts.MaxErrorRate)
	}
	return nil
}

func firstField(line string) string {
	if i := strings.IndexByte(line, '|'); i >= 0 {
		return line[:i]
	}
	return line
}
