package uls

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseDate(t *testing.T) {
	good := []struct {
		in   string
		want Date
	}{
		{"", Date{}},
		{"04/01/2020", NewDate(2020, time.April, 1)},
		{"01/01/2013", NewDate(2013, time.January, 1)},
		{"12/31/1999", NewDate(1999, time.December, 31)},
		{"2020-04-01", NewDate(2020, time.April, 1)},
		{"02/29/2016", NewDate(2016, time.February, 29)}, // leap day
	}
	for _, tt := range good {
		got, err := ParseDate(tt.in)
		if err != nil {
			t.Errorf("ParseDate(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseDate(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	bad := []string{"13/01/2020", "00/10/2020", "02/30/2019", "2020/04/01",
		"April 1 2020", "04-01-2020", "02/29/2019"}
	for _, in := range bad {
		if d, err := ParseDate(in); err == nil {
			t.Errorf("ParseDate(%q) = %v, want error", in, d)
		}
	}
}

func TestDateStringRoundTrip(t *testing.T) {
	f := func(days uint16) bool {
		d := NewDate(2010, time.January, 1).AddDays(int(days))
		got, err := ParseDate(d.String())
		return err == nil && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroDate(t *testing.T) {
	var z Date
	if !z.IsZero() {
		t.Error("zero Date should be IsZero")
	}
	if z.String() != "" {
		t.Errorf("zero Date String = %q, want empty", z.String())
	}
	if !z.Time().IsZero() {
		t.Error("zero Date Time should be zero time")
	}
	d := NewDate(2020, time.April, 1)
	if !z.Before(d) {
		t.Error("zero date should sort before real dates")
	}
}

func TestDateOrdering(t *testing.T) {
	a := NewDate(2016, time.January, 1)
	b := NewDate(2016, time.January, 2)
	c := NewDate(2017, time.January, 1)
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("Before ordering broken")
	}
	if b.Before(a) || a.After(b) {
		t.Error("inverse ordering broken")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal broken")
	}
}

func TestAddDays(t *testing.T) {
	d := NewDate(2015, time.December, 31)
	if got := d.AddDays(1); got != NewDate(2016, time.January, 1) {
		t.Errorf("AddDays(1) = %v", got)
	}
	if got := d.AddDays(-365); got != NewDate(2014, time.December, 31) {
		t.Errorf("AddDays(-365) = %v", got)
	}
	// Leap-year crossing.
	if got := NewDate(2016, time.February, 28).AddDays(1); got != NewDate(2016, time.February, 29) {
		t.Errorf("leap AddDays = %v", got)
	}
}

func TestDateOf(t *testing.T) {
	tm := time.Date(2020, time.April, 1, 23, 59, 0, 0, time.UTC)
	if got := DateOf(tm); got != NewDate(2020, time.April, 1) {
		t.Errorf("DateOf = %v", got)
	}
	if got := DateOf(time.Time{}); !got.IsZero() {
		t.Errorf("DateOf(zero) = %v", got)
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate did not panic on bad input")
		}
	}()
	MustParseDate("garbage")
}
