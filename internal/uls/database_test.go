package uls

import (
	"testing"
	"time"

	"hftnetview/internal/geo"
)

func buildTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	add := func(l *License) {
		t.Helper()
		if err := db.Add(l); err != nil {
			t.Fatalf("Add(%s): %v", l.CallSign, err)
		}
	}
	// Alpha Networks: two licenses, one cancelled in 2018.
	a1 := testLicense("WQAL001", "Alpha Networks", NewDate(2014, time.March, 1), Date{})
	a2 := testLicense("WQAL002", "Alpha Networks", NewDate(2015, time.July, 1),
		NewDate(2018, time.February, 1))
	// Beta Wireless: one license near a different point, non-MG service.
	b1 := testLicense("WQBE001", "Beta Wireless", NewDate(2016, time.January, 5), Date{})
	b1.RadioService = "CF"
	b1.Locations = []Location{
		{Number: 1, Point: geo.Point{Lat: 40.78, Lon: -74.09}, SupportHeight: 50},
		{Number: 2, Point: geo.Point{Lat: 40.90, Lon: -74.30}, SupportHeight: 60},
	}
	// Gamma Comm: MG but station class FB (not FXO).
	c1 := testLicense("WQGA001", "Gamma Comm", NewDate(2017, time.May, 1), Date{})
	c1.Paths[0].StationClass = "FB"
	add(a1)
	add(a2)
	add(b1)
	add(c1)
	return db
}

func TestAddRejectsDuplicates(t *testing.T) {
	db := NewDatabase()
	l := testLicense("WQDU001", "Dup Net", NewDate(2015, time.June, 1), Date{})
	if err := db.Add(l); err != nil {
		t.Fatal(err)
	}
	l2 := testLicense("WQDU001", "Dup Net", NewDate(2016, time.June, 1), Date{})
	if err := db.Add(l2); err == nil {
		t.Error("Add accepted duplicate call sign")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	db := NewDatabase()
	l := testLicense("WQIN001", "", NewDate(2015, time.June, 1), Date{})
	if err := db.Add(l); err == nil {
		t.Error("Add accepted invalid license")
	}
}

func TestByCallSignAndAll(t *testing.T) {
	db := buildTestDB(t)
	if db.Len() != 4 {
		t.Fatalf("Len = %d, want 4", db.Len())
	}
	l, ok := db.ByCallSign("WQAL002")
	if !ok || l.Licensee != "Alpha Networks" {
		t.Errorf("ByCallSign = %+v, %v", l, ok)
	}
	if _, ok := db.ByCallSign("NOPE"); ok {
		t.Error("ByCallSign(NOPE) should fail")
	}
	all := db.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].CallSign >= all[i].CallSign {
			t.Errorf("All not sorted: %s >= %s", all[i-1].CallSign, all[i].CallSign)
		}
	}
}

func TestLicensees(t *testing.T) {
	db := buildTestDB(t)
	got := db.Licensees()
	want := []string{"Alpha Networks", "Beta Wireless", "Gamma Comm"}
	if len(got) != len(want) {
		t.Fatalf("Licensees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Licensees[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByLicensee(t *testing.T) {
	db := buildTestDB(t)
	if got := db.ByLicensee("Alpha Networks"); len(got) != 2 {
		t.Errorf("ByLicensee(Alpha) = %d licenses, want 2", len(got))
	}
	if got := db.ByLicensee("Nobody"); len(got) != 0 {
		t.Errorf("ByLicensee(Nobody) = %d, want 0", len(got))
	}
}

func TestWithinRadius(t *testing.T) {
	db := buildTestDB(t)
	// Near the Alpha/Gamma test towers at (41.76, -88.20).
	chicago := geo.Point{Lat: 41.7625, Lon: -88.2030}
	got := db.WithinRadius(chicago, 10e3)
	// Alpha x2 and Gamma share that tower; Beta is in NJ.
	if len(got) != 3 {
		t.Fatalf("WithinRadius = %d licenses, want 3", len(got))
	}
	for _, l := range got {
		if l.Licensee == "Beta Wireless" {
			t.Error("Beta Wireless should be outside the Chicago radius")
		}
	}
	if got := db.WithinRadius(chicago, 10); len(got) != 0 {
		t.Errorf("WithinRadius(10 m) = %d, want 0", len(got))
	}
}

func TestFilterService(t *testing.T) {
	db := buildTestDB(t)
	all := db.All()
	mgFxo := FilterService(all, ServiceMG, ClassFXO)
	if len(mgFxo) != 2 { // Alpha's two; Beta is CF, Gamma is FB class
		t.Fatalf("FilterService(MG, FXO) = %d, want 2", len(mgFxo))
	}
	mg := FilterService(all, ServiceMG, "")
	if len(mg) != 3 {
		t.Errorf("FilterService(MG) = %d, want 3", len(mg))
	}
	any := FilterService(all, "", "")
	if len(any) != 4 {
		t.Errorf("FilterService(all) = %d, want 4", len(any))
	}
}

func TestActiveAtDatabase(t *testing.T) {
	db := buildTestDB(t)
	cases := []struct {
		date string
		want int
	}{
		{"01/01/2013", 0},
		{"01/01/2015", 1}, // only WQAL001
		{"01/01/2016", 2}, // + WQAL002
		{"01/01/2017", 3}, // + WQBE001
		{"01/01/2018", 4}, // + WQGA001 (WQAL002 cancels 02/2018)
		{"01/01/2019", 3},
	}
	for _, c := range cases {
		if got := len(db.ActiveAt(MustParseDate(c.date))); got != c.want {
			t.Errorf("ActiveAt(%s) = %d, want %d", c.date, got, c.want)
		}
	}
}

func TestActiveCountByLicensee(t *testing.T) {
	db := buildTestDB(t)
	counts := db.ActiveCountByLicensee(MustParseDate("06/01/2017"))
	if counts["Alpha Networks"] != 2 || counts["Beta Wireless"] != 1 || counts["Gamma Comm"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	counts = db.ActiveCountByLicensee(MustParseDate("06/01/2019"))
	if counts["Alpha Networks"] != 1 {
		t.Errorf("Alpha after cancel = %d, want 1", counts["Alpha Networks"])
	}
}

func TestActiveLinks(t *testing.T) {
	db := buildTestDB(t)
	links := db.ActiveLinks("Alpha Networks", MustParseDate("01/01/2016"))
	if len(links) != 2 {
		t.Fatalf("ActiveLinks = %d, want 2", len(links))
	}
	links = db.ActiveLinks("", MustParseDate("06/01/2017"))
	if len(links) != 4 {
		t.Fatalf("ActiveLinks(all) = %d, want 4", len(links))
	}
	links = db.ActiveLinks("Alpha Networks", MustParseDate("01/01/2019"))
	if len(links) != 1 {
		t.Errorf("ActiveLinks after cancel = %d, want 1", len(links))
	}
}

func TestGrantsCancellationsInYear(t *testing.T) {
	db := buildTestDB(t)
	g, c := db.GrantsCancellationsInYear("Alpha Networks", 2015)
	if g != 1 || c != 0 {
		t.Errorf("2015: grants=%d cancels=%d, want 1, 0", g, c)
	}
	g, c = db.GrantsCancellationsInYear("Alpha Networks", 2018)
	if g != 0 || c != 1 {
		t.Errorf("2018: grants=%d cancels=%d, want 0, 1", g, c)
	}
}

func TestMerge(t *testing.T) {
	db := buildTestDB(t)
	other := NewDatabase()
	l := testLicense("WQME001", "Merge Net", NewDate(2019, time.April, 2), Date{})
	if err := other.Add(l); err != nil {
		t.Fatal(err)
	}
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Errorf("Len after merge = %d, want 5", db.Len())
	}
	// Merging again must fail on the duplicate.
	if err := db.Merge(other); err == nil {
		t.Error("Merge accepted duplicate call sign")
	}
}
