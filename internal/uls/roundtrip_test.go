package uls_test

import (
	"bytes"
	"fmt"
	"testing"

	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
)

// encodeBulk renders db in bulk format.
func encodeBulk(t *testing.T, db *uls.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := uls.WriteBulk(&buf, db); err != nil {
		t.Fatalf("WriteBulk: %v", err)
	}
	return buf.Bytes()
}

// TestBulkEncodingIsFixpoint: for any database the reader accepts,
// write → read → write must be byte-identical — the bulk encoding is a
// fixpoint, so re-encoding a corpus any number of times (reload loops,
// store round trips, scrape resumes) can never drift. The property is
// checked on the clean synthetic corpus and then on every corpus the
// lenient reader salvages from each corruption profile at seeds 1–10:
// salvage output is exactly the kind of "weird but valid" database a
// hand-written test would never construct.
func TestBulkEncodingIsFixpoint(t *testing.T) {
	db, err := synth.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assertFixpoint(t, "clean", encodeBulk(t, db))

	profiles := synth.Profiles()
	if testing.Short() {
		// The mixed profile applies every mutation kind; one profile is
		// enough coverage for a short run.
		for _, p := range profiles {
			if p.Name == "mixed" {
				profiles = []synth.Profile{p}
				break
			}
		}
	}
	for _, p := range profiles {
		for seed := uint64(1); seed <= 10; seed++ {
			name := fmt.Sprintf("%s/seed=%d", p.Name, seed)
			c := synth.Corrupt(db, p, seed)
			salvaged, rep, err := uls.ReadBulkWithOptions(
				bytes.NewReader(c.Dirty), uls.ReadBulkOptions{Mode: uls.Lenient})
			if err != nil {
				t.Fatalf("%s: salvage failed: %v", name, err)
			}
			if salvaged.Len() == 0 {
				t.Fatalf("%s: salvage kept nothing (report: %+v)", name, rep)
			}
			assertFixpoint(t, name, encodeBulk(t, salvaged))
		}
	}
}

// assertFixpoint reads b1 strictly, re-encodes it, and requires the
// bytes to match exactly.
func assertFixpoint(t *testing.T, name string, b1 []byte) {
	t.Helper()
	back, err := uls.ReadBulk(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("%s: encoded corpus failed strict re-read: %v", name, err)
	}
	b2 := encodeBulk(t, back)
	if !bytes.Equal(b1, b2) {
		i := 0
		for i < len(b1) && i < len(b2) && b1[i] == b2[i] {
			i++
		}
		lo, hi := max(0, i-80), i+80
		ctx := func(b []byte) string {
			if lo >= len(b) {
				return "<EOF>"
			}
			return string(b[lo:min(hi, len(b))])
		}
		t.Fatalf("%s: write→read→write drifted at byte %d (lens %d vs %d)\n b1: …%s…\n b2: …%s…",
			name, i, len(b1), len(b2), ctx(b1), ctx(b2))
	}
}
