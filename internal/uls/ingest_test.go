package uls

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// license returns a well-formed bulk record block for one call sign:
// two locations, one path, one frequency. Add-able as is.
func cleanLicense(cs string) string {
	return strings.ReplaceAll(strings.TrimLeft(`
HD|CS|1|MG|A|01/02/2015|01/02/2025|
EN|CS|Good Net|0001|ops@good.example
LO|CS|1|41-46-00.0 N|088-12-00.0 W|200.0|90.0
LO|CS|2|41-52-00.0 N|087-56-00.0 W|195.0|85.0
PA|CS|1|1|2|FXO|45.0|225.0|38.0
FR|CS|1|11245.0
`, "\n"), "CS", cs)
}

func readLenient(t *testing.T, input string, opts ReadBulkOptions) (*Database, *IngestReport) {
	t.Helper()
	db, rep, err := ReadBulkWithOptions(strings.NewReader(input), opts)
	if err != nil {
		t.Fatalf("ReadBulkWithOptions: %v", err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	return db, rep
}

func TestLenientSalvagesRestOfLicense(t *testing.T) {
	// License B's first LO is garbled; its PA references that now-missing
	// location, so the repair pass must also drop the path (and the FR
	// that attached to it) while keeping everything else.
	dirty := cleanLicense("WQAAA01") +
		"HD|WQBBB02|2|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQBBB02|Dirty Net|0002|ops@dirty.example\n" +
		"LO|WQBBB02|1|41-46-00.0 N|088-12-00.0 W|oops|90.0\n" +
		"LO|WQBBB02|2|41-52-00.0 N|087-56-00.0 W|195.0|85.0\n" +
		"PA|WQBBB02|1|1|2|FXO|45.0|225.0|38.0\n" +
		"FR|WQBBB02|1|11245.0\n"

	if _, err := ReadBulk(strings.NewReader(dirty)); err == nil {
		t.Fatal("strict parse accepted garbled LO")
	}

	db, rep := readLenient(t, dirty, ReadBulkOptions{Mode: Lenient})
	if db.Len() != 2 {
		t.Fatalf("loaded %d licenses, want 2", db.Len())
	}
	a, _ := db.ByCallSign("WQAAA01")
	if len(a.Locations) != 2 || len(a.Paths) != 1 {
		t.Errorf("clean license damaged: %d locations, %d paths", len(a.Locations), len(a.Paths))
	}
	b, ok := db.ByCallSign("WQBBB02")
	if !ok {
		t.Fatal("dirty license not salvaged")
	}
	if len(b.Locations) != 1 || b.Locations[0].Number != 2 {
		t.Errorf("salvaged locations = %v, want just number 2", b.Locations)
	}
	if len(b.Paths) != 0 {
		t.Errorf("path referencing dropped location survived: %v", b.Paths)
	}
	if rep.BadLines != 1 {
		t.Errorf("BadLines = %d, want 1 (the garbled LO)", rep.BadLines)
	}
	if rep.Repaired == 0 {
		t.Error("Repaired = 0, want the dangling path dropped")
	}
	if rep.ByClass[ClassSyntax] == 0 || rep.ByClass[ClassReferential] == 0 {
		t.Errorf("ByClass = %v, want syntax (bad LO) and referential (dangling PA)", rep.ByClass)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("Lenient quarantined %v, want none", rep.Quarantined)
	}
}

func TestLenientQuarantinesUnloadableLicense(t *testing.T) {
	// A garbled EN leaves the license with no licensee name: repair
	// cannot invent one, Add rejects it, and the license is quarantined
	// rather than silently dropped.
	dirty := cleanLicense("WQAAA01") +
		"HD|WQBBB02|2|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQBBB02||0002|ops@dirty.example\n" +
		"LO|WQBBB02|1|41-46-00.0 N|088-12-00.0 W|200.0|90.0\n"

	db, rep := readLenient(t, dirty, ReadBulkOptions{Mode: Lenient})
	if db.Len() != 1 {
		t.Fatalf("loaded %d licenses, want 1", db.Len())
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "WQBBB02" {
		t.Errorf("Quarantined = %v, want [WQBBB02]", rep.Quarantined)
	}
	var q bytes.Buffer
	if err := rep.WriteQuarantine(&q); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.String(), "WQBBB02\t") {
		t.Errorf("WriteQuarantine = %q, want call sign TAB reason", q.String())
	}
}

func TestDropLicenseMode(t *testing.T) {
	// One record error anywhere in a license condemns the whole license,
	// including when the error struck the HD itself so the license never
	// opened (the "doomed" path).
	dirty := cleanLicense("WQAAA01") +
		"HD|WQBBB02|2|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQBBB02|Dirty Net|0002|ops@dirty.example\n" +
		"LO|WQBBB02|1|41-46-00.0 N|088-12-00.0 W|oops|90.0\n" +
		"HD|WQCCC03|not-a-number|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQCCC03|Headless Net|0003|ops@headless.example\n"

	db, rep := readLenient(t, dirty, ReadBulkOptions{Mode: DropLicense})
	if db.Len() != 1 {
		t.Fatalf("loaded %d licenses, want only the clean one", db.Len())
	}
	if _, ok := db.ByCallSign("WQAAA01"); !ok {
		t.Error("clean license missing")
	}
	want := []string{"WQBBB02", "WQCCC03"}
	if len(rep.Quarantined) != len(want) || rep.Quarantined[0] != want[0] || rep.Quarantined[1] != want[1] {
		t.Errorf("Quarantined = %v, want %v", rep.Quarantined, want)
	}
	// Same stream in Lenient mode keeps WQBBB02's surviving records.
	db2, _ := readLenient(t, dirty, ReadBulkOptions{Mode: Lenient})
	if _, ok := db2.ByCallSign("WQBBB02"); !ok {
		t.Error("Lenient dropped a salvageable license")
	}
}

func TestErrorBudget(t *testing.T) {
	dirty := cleanLicense("WQAAA01") +
		"LO|WQAAA01|9|garbage dms|088-12-00.0 W|200.0|90.0\n"

	// 1 bad of 7 record lines is ~14%: a 10% budget trips at EOF even
	// below budgetMinSample.
	_, rep, err := ReadBulkWithOptions(strings.NewReader(dirty),
		ReadBulkOptions{Mode: Lenient, MaxErrorRate: 0.10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if rep == nil {
		t.Fatal("nil report alongside budget error")
	}
	if rep.BadLines != 1 || rep.RecordLines != 7 {
		t.Errorf("report says %d/%d bad, want 1/7", rep.BadLines, rep.RecordLines)
	}

	// A 50% budget, or no budget at all, lets the same stream through.
	for _, rate := range []float64{0.5, 0} {
		if _, _, err := ReadBulkWithOptions(strings.NewReader(dirty),
			ReadBulkOptions{Mode: Lenient, MaxErrorRate: rate}); err != nil {
			t.Errorf("MaxErrorRate=%v: %v", rate, err)
		}
	}
}

func TestOverlongLine(t *testing.T) {
	long := strings.Repeat("x", maxLineBytes+100)
	input := long + "\n" + cleanLicense("WQAAA01")

	// Strict: a located *ParseError, not an anonymous scanner failure.
	_, err := ReadBulk(strings.NewReader(input))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("strict err = %v, want *ParseError", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Err.Error(), "exceeds") {
		t.Errorf("ParseError = line %d %q, want line 1 mentioning the limit", pe.Line, pe.Err)
	}
	if len(pe.Text) > tooLongKeep {
		t.Errorf("ParseError retained %d bytes of the overlong line, want <= %d", len(pe.Text), tooLongKeep)
	}

	// Lenient: the line is skipped and parsing resumes on the next line.
	db, rep := readLenient(t, input, ReadBulkOptions{Mode: Lenient})
	if db.Len() != 1 {
		t.Fatalf("loaded %d licenses after overlong line, want 1", db.Len())
	}
	if rep.BadLines != 1 || rep.ByClass[ClassSyntax] != 1 || rep.ByType["??"] != 1 {
		t.Errorf("report = bad %d, class %v, type %v; want 1 syntax ?? line",
			rep.BadLines, rep.ByClass, rep.ByType)
	}
}

func TestFRBeforePAOrdering(t *testing.T) {
	// The FR for path 1 arrives before its PA: legal in every mode.
	reordered := "HD|WQAAA01|1|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQAAA01|Good Net|0001|ops@good.example\n" +
		"FR|WQAAA01|1|11245.0\n" +
		"LO|WQAAA01|1|41-46-00.0 N|088-12-00.0 W|200.0|90.0\n" +
		"LO|WQAAA01|2|41-52-00.0 N|087-56-00.0 W|195.0|85.0\n" +
		"PA|WQAAA01|1|1|2|FXO|45.0|225.0|38.0\n"
	db, err := ReadBulk(strings.NewReader(reordered))
	if err != nil {
		t.Fatalf("strict parse of FR-before-PA: %v", err)
	}
	l, _ := db.ByCallSign("WQAAA01")
	if len(l.Paths) != 1 || len(l.Paths[0].FrequenciesMHz) != 1 {
		t.Fatalf("buffered FR not attached: %+v", l.Paths)
	}

	// An FR naming a path that never appears errors at EOF, blaming the
	// FR's own line; with several unresolved, the earliest line wins.
	orphan := cleanLicense("WQAAA01") +
		"FR|WQAAA01|7|11245.0\n" +
		"FR|WQAAA01|8|11325.0\n"
	_, err = ReadBulk(strings.NewReader(orphan))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 7 || !strings.Contains(err.Error(), "unknown path 7") {
		t.Errorf("err = line %d %v, want line 7 / unknown path 7", pe.Line, err)
	}

	// Lenient keeps the license and files both orphans as referential.
	db2, rep := readLenient(t, orphan, ReadBulkOptions{Mode: Lenient})
	if db2.Len() != 1 {
		t.Fatalf("loaded %d, want 1", db2.Len())
	}
	if rep.BadLines != 2 || rep.ByClass[ClassReferential] != 2 {
		t.Errorf("report = bad %d, class %v; want 2 referential", rep.BadLines, rep.ByClass)
	}
}

func TestStrictModeMatchesReadBulk(t *testing.T) {
	// The options path with Mode: Strict is the ReadBulk implementation;
	// same database, same error text.
	input := cleanLicense("WQAAA01") + cleanLicense("WQBBB02")
	db1, err1 := ReadBulk(strings.NewReader(input))
	db2, rep, err2 := ReadBulkWithOptions(strings.NewReader(input), ReadBulkOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	var a, b bytes.Buffer
	if err := WriteBulk(&a, db1); err != nil {
		t.Fatal(err)
	}
	if err := WriteBulk(&b, db2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("strict ReadBulkWithOptions output differs from ReadBulk")
	}
	if rep.Mode != Strict || rep.BadLines != 0 || rep.LicensesLoaded != 2 {
		t.Errorf("strict report = %+v", rep)
	}

	bad := "HD|WQAAA01|1|MG|A|01/02/2015|01/02/2025|\nZZ|WQAAA01|what\n"
	_, e1 := ReadBulk(strings.NewReader(bad))
	_, _, e2 := ReadBulkWithOptions(strings.NewReader(bad), ReadBulkOptions{})
	if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
		t.Errorf("strict error text diverged:\n  ReadBulk:            %v\n  ReadBulkWithOptions: %v", e1, e2)
	}
}

func TestIngestReportDeterministic(t *testing.T) {
	dirty := cleanLicense("WQAAA01") +
		"LO|WQAAA01|9|garbage|088-12-00.0 W|200.0|90.0\n" +
		"HD|WQBBB02|2|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQBBB02||0002|x@y\n" +
		"FR|WQCCC03|1|11245.0\n"
	_, rep1 := readLenient(t, dirty, ReadBulkOptions{Mode: Lenient})
	_, rep2 := readLenient(t, dirty, ReadBulkOptions{Mode: Lenient})
	if rep1.String() != rep2.String() {
		t.Errorf("report not deterministic:\n%s\nvs\n%s", rep1, rep2)
	}
}

// TestIngestReportGolden pins the exact report rendering — header,
// by-class/by-type breakdowns, and quarantine lines — against
// testdata/ingest_report.golden. Refresh with: go test -run Golden -update
func TestIngestReportGolden(t *testing.T) {
	dirty := cleanLicense("WQAAA01") +
		"# comment lines do not count as records\n" +
		"\n" +
		"HD|WQBBB02|2|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQBBB02||0002|ops@dirty.example\n" +
		"LO|WQBBB02|1|41-46-00.0 N|088-12-00.0 W|oops|90.0\n" +
		"PA|WQBBB02|1|1|2|FXO|45.0|225.0|38.0\n" +
		"HD|WQCCC03|3|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQCCC03|Far Net|0003|ops@far.example\n" +
		"LO|WQCCC03|1|10-00-00.0 N|088-12-00.0 W|200.0|90.0\n" +
		"FR|WQDDD04|1|11245.0\n" +
		"ZZ|WQAAA01|not a record\n"
	bounds := &Bounds{MinLat: 38, MaxLat: 44, MinLon: -92, MaxLon: -72}
	_, rep, err := ReadBulkWithOptions(strings.NewReader(dirty),
		ReadBulkOptions{Mode: Lenient, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.WriteString(rep.String())
	got.WriteString("--- quarantine ---\n")
	if err := rep.WriteQuarantine(&got); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "ingest_report.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("ingest report drifted from golden file (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

func TestValidateRepair(t *testing.T) {
	db, err := ReadBulk(strings.NewReader(cleanLicense("WQAAA01")))
	if err != nil {
		t.Fatal(err)
	}
	if rep := Validate(db, ValidateOptions{}); !rep.Clean() {
		t.Fatalf("clean corpus reported issues:\n%s", rep)
	}

	// Wound the license behind the database's back: a path to a missing
	// location, a negative frequency, and a date inversion.
	l, _ := db.ByCallSign("WQAAA01")
	l.Paths = append(l.Paths, Path{
		Number: 2, TXLocation: 1, RXLocation: 9, StationClass: "FXO",
		FrequenciesMHz: []float64{6200}, TXAzimuthDeg: 10, RXAzimuthDeg: 190,
	})
	l.Paths[0].FrequenciesMHz = append(l.Paths[0].FrequenciesMHz, -5)
	l.Grant, l.Expiration = l.Expiration, l.Grant

	// Report-only: issues found, nothing removed, second run identical.
	rep1 := Validate(db, ValidateOptions{})
	if rep1.Clean() || rep1.Repaired != 0 {
		t.Fatalf("report-only pass: %+v", rep1)
	}
	rep2 := Validate(db, ValidateOptions{})
	if rep1.String() != rep2.String() {
		t.Error("report-only Validate mutated the database")
	}
	if rep1.ByClass[ClassReferential] != 1 || rep1.ByClass[ClassRange] != 2 {
		t.Errorf("ByClass = %v, want 1 referential (dangling path) + 2 range (freq, dates)", rep1.ByClass)
	}

	// Repair: the droppable issues go, the date inversion stays.
	gen := db.gen
	rep3 := Validate(db, ValidateOptions{Repair: true})
	if rep3.Repaired != 2 {
		t.Errorf("Repaired = %d, want 2 (path, frequency)", rep3.Repaired)
	}
	if db.gen == gen {
		t.Error("repair did not invalidate the database's derived indexes")
	}
	if len(l.Paths) != 1 || len(l.Paths[0].FrequenciesMHz) != 1 {
		t.Errorf("repair left %d paths / %v freqs", len(l.Paths), l.Paths[0].FrequenciesMHz)
	}
	rep4 := Validate(db, ValidateOptions{Repair: true})
	if rep4.Repaired != 0 || rep4.ByClass[ClassRange] != 1 {
		t.Errorf("second repair = %+v, want only the report-only date inversion", rep4)
	}
}

func TestValidateBounds(t *testing.T) {
	db, err := ReadBulk(strings.NewReader(cleanLicense("WQAAA01")))
	if err != nil {
		t.Fatal(err)
	}
	// A box that excludes location 2: the location goes, and the path
	// referencing it follows.
	tight := &Bounds{MinLat: 41.7, MaxLat: 41.8, MinLon: -88.3, MaxLon: -88.1}
	if !tight.Contains(mustLicense(t, db).Locations[0].Point) {
		t.Fatal("test bounds exclude location 1 too")
	}
	rep := Validate(db, ValidateOptions{Bounds: tight, Repair: true})
	if rep.Repaired != 2 {
		t.Fatalf("Repaired = %d, want 2 (location 2 + its path):\n%s", rep.Repaired, rep)
	}
	l := mustLicense(t, db)
	if len(l.Locations) != 1 || len(l.Paths) != 0 {
		t.Errorf("after bounds repair: %d locations, %d paths", len(l.Locations), len(l.Paths))
	}
}

func mustLicense(t *testing.T, db *Database) *License {
	t.Helper()
	l, ok := db.ByCallSign("WQAAA01")
	if !ok {
		t.Fatal("WQAAA01 missing")
	}
	return l
}
