package uls

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hftnetview/internal/geo"
)

// Bulk interchange format.
//
// FCC ULS publishes its licensing database as pipe-delimited record
// files, one record per line, where the first field is a two-letter
// record type (HD = header, EN = entity, LO = location, PA = path,
// FR = frequency) and records for one license are keyed by call sign.
// This file implements a faithful subset of that format with the fields
// this study uses:
//
//	HD|call_sign|license_id|radio_service|status|grant|expiration|cancellation
//	EN|call_sign|licensee_name|frn|contact_email
//	LO|call_sign|location_number|lat_dms|lon_dms|ground_elev_m|support_height_m
//	PA|call_sign|path_number|tx_location|rx_location|station_class|tx_azimuth|rx_azimuth|gain_dbi
//	FR|call_sign|path_number|frequency_mhz
//
// Dates are MM/DD/YYYY (empty = not on file); coordinates are in the
// DMS form of geo.ParseDMS. Records for a license may appear in any
// order after its HD record (an FR may even precede the PA it names —
// it is buffered and resolved when the stream ends); licenses may
// interleave. Lines beginning with '#' and blank lines are ignored.
//
// Real extracts are dirty. ReadBulk is the strict, all-or-nothing
// parser; ReadBulkWithOptions (ingest.go) adds the lenient modes,
// record-level quarantine, and the IngestReport error taxonomy.

// WriteBulk writes the database in bulk format, licenses sorted by call
// sign and records grouped per license, so output is deterministic and
// diff-friendly.
func WriteBulk(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for _, l := range db.All() {
		if err := writeLicense(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeLicense(w io.Writer, l *License) error {
	if _, err := fmt.Fprintf(w, "HD|%s|%d|%s|%s|%s|%s|%s\n",
		l.CallSign, l.LicenseID, l.RadioService, l.Status,
		l.Grant, l.Expiration, l.Cancellation); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "EN|%s|%s|%s|%s\n",
		l.CallSign, l.Licensee, l.FRN, l.ContactEmail); err != nil {
		return err
	}
	for _, loc := range l.Locations {
		lat, lon := geo.PointToDMS(loc.Point)
		if _, err := fmt.Fprintf(w, "LO|%s|%d|%s|%s|%.1f|%.1f\n",
			l.CallSign, loc.Number, lat, lon, loc.GroundElevation, loc.SupportHeight); err != nil {
			return err
		}
	}
	for _, p := range l.Paths {
		if _, err := fmt.Fprintf(w, "PA|%s|%d|%d|%d|%s|%.1f|%.1f|%.1f\n",
			l.CallSign, p.Number, p.TXLocation, p.RXLocation, p.StationClass,
			p.TXAzimuthDeg, p.RXAzimuthDeg, p.AntennaGainDBi); err != nil {
			return err
		}
		for _, f := range p.FrequenciesMHz {
			if _, err := fmt.Fprintf(w, "FR|%s|%d|%.1f\n", l.CallSign, p.Number, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseError describes a malformed bulk record.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending line (truncated for overlong lines)
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("uls: bulk line %d: %v (%q)", e.Line, e.Err, e.Text)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadBulk parses a bulk stream into a fresh Database. Parsing is
// streaming (constant memory per license beyond the database itself) and
// strict: any malformed record aborts with a *ParseError carrying the
// line number. For fault-tolerant ingestion of dirty extracts, see
// ReadBulkWithOptions.
func ReadBulk(r io.Reader) (*Database, error) {
	db, _, err := ReadBulkWithOptions(r, ReadBulkOptions{Mode: Strict})
	return db, err
}

// maxLineBytes is the longest record line the parser accepts; longer
// lines (the signature of lost newlines in a truncated or corrupted
// extract) are a Syntax record error rather than a valid record.
const maxLineBytes = 1 << 20

// tooLongKeep is how much of an overlong line is retained for
// diagnostics.
const tooLongKeep = 64

// lineReader yields lines with 1-based numbering. Unlike bufio.Scanner
// it survives lines longer than maxLineBytes: the overflowing line is
// consumed to its newline and returned truncated with tooLong set, so
// a caller can skip it and keep parsing.
type lineReader struct {
	br   *bufio.Reader
	line int
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// next returns the next line without its terminator. It returns io.EOF
// only with no line to deliver.
func (lr *lineReader) next() (text string, lineNo int, tooLong bool, err error) {
	var buf []byte
	atEOF := false
	for {
		chunk, rerr := lr.br.ReadSlice('\n')
		if !tooLong {
			buf = append(buf, chunk...)
			n := len(buf)
			if n > 0 && buf[n-1] == '\n' {
				n--
			}
			if n > maxLineBytes {
				tooLong = true
				buf = buf[:tooLongKeep]
			}
		}
		switch rerr {
		case nil:
			// Line complete.
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			atEOF = true
		default:
			return "", 0, false, rerr
		}
		if atEOF && len(buf) == 0 && !tooLong {
			return "", 0, false, io.EOF
		}
		lr.line++
		if !tooLong && len(buf) > 0 && buf[len(buf)-1] == '\n' {
			buf = buf[:len(buf)-1]
		}
		return string(buf), lr.line, tooLong, nil
	}
}

// classedError tags a record-parse error with its taxonomy class while
// rendering exactly like the underlying error, so strict-mode messages
// are unchanged.
type classedError struct {
	class ErrorClass
	err   error
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

func cerrf(class ErrorClass, format string, args ...any) error {
	return &classedError{class: class, err: fmt.Errorf(format, args...)}
}

// pendingFR is an FR record whose PA had not been seen yet when the FR
// line was read; it is resolved when the stream ends.
type pendingFR struct {
	line int
	text string
	path int
	freq float64
}

// openLicense tracks one license being assembled across (possibly
// interleaved) record lines.
type openLicense struct {
	l       *License
	pending []pendingFR
	erred   bool // had any record error (DropLicense quarantines on this)
}

// recordTypes are the known two-letter record type tokens. Anything
// else is reported under the placeholder type "??" so adversarial
// input cannot grow the report's per-type map without bound.
var recordTypes = map[string]bool{"HD": true, "EN": true, "LO": true, "PA": true, "FR": true}

func sanitizeType(typ string) string {
	if recordTypes[typ] {
		return typ
	}
	return "??"
}

// parseBulkLine parses one record line into the open-license set. It
// returns the call sign and record type it could attribute the line to
// (either may be empty) alongside any error, so lenient mode can file
// the failure under the right license.
func parseBulkLine(line string, lineNo int, open map[string]*openLicense, order *[]string) (cs, typ string, err error) {
	fields := strings.Split(line, "|")
	if len(fields) >= 1 {
		typ = sanitizeType(fields[0])
	}
	if len(fields) < 2 {
		return "", typ, cerrf(ClassSyntax, "too few fields")
	}
	cs = fields[1]
	if cs == "" {
		return "", typ, cerrf(ClassSyntax, "empty call sign")
	}
	if fields[0] == "HD" {
		if _, dup := open[cs]; dup {
			return cs, typ, cerrf(ClassDuplicate, "duplicate HD for %s", cs)
		}
		l, err := parseHD(fields)
		if err != nil {
			return cs, typ, err
		}
		open[cs] = &openLicense{l: l}
		*order = append(*order, cs)
		return cs, typ, nil
	}
	ol, ok := open[cs]
	if !ok {
		return cs, typ, cerrf(ClassReferential, "%s record for %s precedes its HD record", fields[0], cs)
	}
	switch fields[0] {
	case "EN":
		return cs, typ, parseEN(fields, ol.l)
	case "LO":
		return cs, typ, parseLO(fields, ol.l)
	case "PA":
		return cs, typ, parsePA(fields, ol.l)
	case "FR":
		return cs, typ, parseFR(fields, lineNo, line, ol)
	default:
		return cs, typ, cerrf(ClassSyntax, "unknown record type %q", fields[0])
	}
}

func wantFields(fields []string, n int) error {
	if len(fields) != n {
		return cerrf(ClassSyntax, "want %d fields, got %d", n, len(fields))
	}
	return nil
}

func parseHD(f []string) (*License, error) {
	if err := wantFields(f, 8); err != nil {
		return nil, err
	}
	id, err := strconv.Atoi(f[2])
	if err != nil {
		return nil, cerrf(ClassSyntax, "bad license id %q", f[2])
	}
	grant, err := ParseDate(f[5])
	if err != nil {
		return nil, &classedError{class: ClassSyntax, err: err}
	}
	exp, err := ParseDate(f[6])
	if err != nil {
		return nil, &classedError{class: ClassSyntax, err: err}
	}
	cancel, err := ParseDate(f[7])
	if err != nil {
		return nil, &classedError{class: ClassSyntax, err: err}
	}
	switch Status(f[4]) {
	case StatusActive, StatusCancelled, StatusExpired, StatusTerminated:
	default:
		return nil, cerrf(ClassRange, "unknown status %q", f[4])
	}
	return &License{
		CallSign:     f[1],
		LicenseID:    id,
		RadioService: f[3],
		Status:       Status(f[4]),
		Grant:        grant,
		Expiration:   exp,
		Cancellation: cancel,
	}, nil
}

func parseEN(f []string, l *License) error {
	if err := wantFields(f, 5); err != nil {
		return err
	}
	if l.Licensee != "" {
		return cerrf(ClassDuplicate, "duplicate EN record")
	}
	if f[2] == "" {
		return cerrf(ClassSyntax, "empty licensee name")
	}
	l.Licensee, l.FRN, l.ContactEmail = f[2], f[3], f[4]
	return nil
}

func parseLO(f []string, l *License) error {
	if err := wantFields(f, 7); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return cerrf(ClassSyntax, "bad location number %q", f[2])
	}
	lat, err := geo.ParseDMS(f[3])
	if err != nil {
		return &classedError{class: ClassSyntax, err: err}
	}
	lon, err := geo.ParseDMS(f[4])
	if err != nil {
		return &classedError{class: ClassSyntax, err: err}
	}
	pt, err := geo.PointFromDMS(lat, lon)
	if err != nil {
		return &classedError{class: ClassRange, err: err}
	}
	elev, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad ground elevation %q", f[5])
	}
	height, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad support height %q", f[6])
	}
	l.Locations = append(l.Locations, Location{
		Number: num, Point: pt, GroundElevation: elev, SupportHeight: height,
	})
	return nil
}

func parsePA(f []string, l *License) error {
	if err := wantFields(f, 9); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return cerrf(ClassSyntax, "bad path number %q", f[2])
	}
	tx, err := strconv.Atoi(f[3])
	if err != nil {
		return cerrf(ClassSyntax, "bad tx location %q", f[3])
	}
	rx, err := strconv.Atoi(f[4])
	if err != nil {
		return cerrf(ClassSyntax, "bad rx location %q", f[4])
	}
	txAz, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad tx azimuth %q", f[6])
	}
	rxAz, err := strconv.ParseFloat(f[7], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad rx azimuth %q", f[7])
	}
	gain, err := strconv.ParseFloat(f[8], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad antenna gain %q", f[8])
	}
	l.Paths = append(l.Paths, Path{
		Number: num, TXLocation: tx, RXLocation: rx, StationClass: f[5],
		TXAzimuthDeg: txAz, RXAzimuthDeg: rxAz, AntennaGainDBi: gain,
	})
	return nil
}

// parseFR parses a frequency record. An FR whose path has not been
// seen yet is buffered on the license (the format allows records in any
// order after the HD) and resolved at end of stream.
func parseFR(f []string, lineNo int, text string, ol *openLicense) error {
	if err := wantFields(f, 4); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return cerrf(ClassSyntax, "bad path number %q", f[2])
	}
	freq, err := strconv.ParseFloat(f[3], 64)
	if err != nil {
		return cerrf(ClassSyntax, "bad frequency %q", f[3])
	}
	if freq <= 0 {
		return cerrf(ClassRange, "bad frequency %q", f[3])
	}
	if attachFR(ol.l, num, freq) {
		return nil
	}
	ol.pending = append(ol.pending, pendingFR{line: lineNo, text: text, path: num, freq: freq})
	return nil
}

// attachFR appends freq to the numbered path, reporting whether the
// path exists.
func attachFR(l *License, path int, freq float64) bool {
	for i := range l.Paths {
		if l.Paths[i].Number == path {
			l.Paths[i].FrequenciesMHz = append(l.Paths[i].FrequenciesMHz, freq)
			return true
		}
	}
	return false
}
