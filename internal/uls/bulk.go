package uls

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hftnetview/internal/geo"
)

// Bulk interchange format.
//
// FCC ULS publishes its licensing database as pipe-delimited record
// files, one record per line, where the first field is a two-letter
// record type (HD = header, EN = entity, LO = location, PA = path,
// FR = frequency) and records for one license are keyed by call sign.
// This file implements a faithful subset of that format with the fields
// this study uses:
//
//	HD|call_sign|license_id|radio_service|status|grant|expiration|cancellation
//	EN|call_sign|licensee_name|frn|contact_email
//	LO|call_sign|location_number|lat_dms|lon_dms|ground_elev_m|support_height_m
//	PA|call_sign|path_number|tx_location|rx_location|station_class|tx_azimuth|rx_azimuth|gain_dbi
//	FR|call_sign|path_number|frequency_mhz
//
// Dates are MM/DD/YYYY (empty = not on file); coordinates are in the
// DMS form of geo.ParseDMS. Records for a license may appear in any
// order after its HD record; licenses may interleave. Lines beginning
// with '#' and blank lines are ignored.

// WriteBulk writes the database in bulk format, licenses sorted by call
// sign and records grouped per license, so output is deterministic and
// diff-friendly.
func WriteBulk(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for _, l := range db.All() {
		if err := writeLicense(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeLicense(w io.Writer, l *License) error {
	if _, err := fmt.Fprintf(w, "HD|%s|%d|%s|%s|%s|%s|%s\n",
		l.CallSign, l.LicenseID, l.RadioService, l.Status,
		l.Grant, l.Expiration, l.Cancellation); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "EN|%s|%s|%s|%s\n",
		l.CallSign, l.Licensee, l.FRN, l.ContactEmail); err != nil {
		return err
	}
	for _, loc := range l.Locations {
		lat, lon := geo.PointToDMS(loc.Point)
		if _, err := fmt.Fprintf(w, "LO|%s|%d|%s|%s|%.1f|%.1f\n",
			l.CallSign, loc.Number, lat, lon, loc.GroundElevation, loc.SupportHeight); err != nil {
			return err
		}
	}
	for _, p := range l.Paths {
		if _, err := fmt.Fprintf(w, "PA|%s|%d|%d|%d|%s|%.1f|%.1f|%.1f\n",
			l.CallSign, p.Number, p.TXLocation, p.RXLocation, p.StationClass,
			p.TXAzimuthDeg, p.RXAzimuthDeg, p.AntennaGainDBi); err != nil {
			return err
		}
		for _, f := range p.FrequenciesMHz {
			if _, err := fmt.Fprintf(w, "FR|%s|%d|%.1f\n", l.CallSign, p.Number, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseError describes a malformed bulk record.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending line
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("uls: bulk line %d: %v (%q)", e.Line, e.Err, e.Text)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadBulk parses a bulk stream into a fresh Database. Parsing is
// streaming (constant memory per license beyond the database itself) and
// strict: any malformed record aborts with a *ParseError carrying the
// line number.
func ReadBulk(r io.Reader) (*Database, error) {
	db := NewDatabase()
	// open tracks licenses being assembled; they are validated and added
	// once the whole stream is read (records may interleave).
	open := make(map[string]*License)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseBulkLine(line, open, &order); err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Err: err}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("uls: reading bulk stream: %w", err)
	}
	for _, cs := range order {
		if err := db.Add(open[cs]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func parseBulkLine(line string, open map[string]*License, order *[]string) error {
	fields := strings.Split(line, "|")
	if len(fields) < 2 {
		return fmt.Errorf("too few fields")
	}
	typ, cs := fields[0], fields[1]
	if cs == "" {
		return fmt.Errorf("empty call sign")
	}
	if typ == "HD" {
		if _, dup := open[cs]; dup {
			return fmt.Errorf("duplicate HD for %s", cs)
		}
		l, err := parseHD(fields)
		if err != nil {
			return err
		}
		open[cs] = l
		*order = append(*order, cs)
		return nil
	}
	l, ok := open[cs]
	if !ok {
		return fmt.Errorf("%s record for %s precedes its HD record", typ, cs)
	}
	switch typ {
	case "EN":
		return parseEN(fields, l)
	case "LO":
		return parseLO(fields, l)
	case "PA":
		return parsePA(fields, l)
	case "FR":
		return parseFR(fields, l)
	default:
		return fmt.Errorf("unknown record type %q", typ)
	}
}

func wantFields(fields []string, n int) error {
	if len(fields) != n {
		return fmt.Errorf("want %d fields, got %d", n, len(fields))
	}
	return nil
}

func parseHD(f []string) (*License, error) {
	if err := wantFields(f, 8); err != nil {
		return nil, err
	}
	id, err := strconv.Atoi(f[2])
	if err != nil {
		return nil, fmt.Errorf("bad license id %q", f[2])
	}
	grant, err := ParseDate(f[5])
	if err != nil {
		return nil, err
	}
	exp, err := ParseDate(f[6])
	if err != nil {
		return nil, err
	}
	cancel, err := ParseDate(f[7])
	if err != nil {
		return nil, err
	}
	switch Status(f[4]) {
	case StatusActive, StatusCancelled, StatusExpired, StatusTerminated:
	default:
		return nil, fmt.Errorf("unknown status %q", f[4])
	}
	return &License{
		CallSign:     f[1],
		LicenseID:    id,
		RadioService: f[3],
		Status:       Status(f[4]),
		Grant:        grant,
		Expiration:   exp,
		Cancellation: cancel,
	}, nil
}

func parseEN(f []string, l *License) error {
	if err := wantFields(f, 5); err != nil {
		return err
	}
	if l.Licensee != "" {
		return fmt.Errorf("duplicate EN record")
	}
	if f[2] == "" {
		return fmt.Errorf("empty licensee name")
	}
	l.Licensee, l.FRN, l.ContactEmail = f[2], f[3], f[4]
	return nil
}

func parseLO(f []string, l *License) error {
	if err := wantFields(f, 7); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad location number %q", f[2])
	}
	lat, err := geo.ParseDMS(f[3])
	if err != nil {
		return err
	}
	lon, err := geo.ParseDMS(f[4])
	if err != nil {
		return err
	}
	pt, err := geo.PointFromDMS(lat, lon)
	if err != nil {
		return err
	}
	elev, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad ground elevation %q", f[5])
	}
	height, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return fmt.Errorf("bad support height %q", f[6])
	}
	l.Locations = append(l.Locations, Location{
		Number: num, Point: pt, GroundElevation: elev, SupportHeight: height,
	})
	return nil
}

func parsePA(f []string, l *License) error {
	if err := wantFields(f, 9); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad path number %q", f[2])
	}
	tx, err := strconv.Atoi(f[3])
	if err != nil {
		return fmt.Errorf("bad tx location %q", f[3])
	}
	rx, err := strconv.Atoi(f[4])
	if err != nil {
		return fmt.Errorf("bad rx location %q", f[4])
	}
	txAz, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return fmt.Errorf("bad tx azimuth %q", f[6])
	}
	rxAz, err := strconv.ParseFloat(f[7], 64)
	if err != nil {
		return fmt.Errorf("bad rx azimuth %q", f[7])
	}
	gain, err := strconv.ParseFloat(f[8], 64)
	if err != nil {
		return fmt.Errorf("bad antenna gain %q", f[8])
	}
	l.Paths = append(l.Paths, Path{
		Number: num, TXLocation: tx, RXLocation: rx, StationClass: f[5],
		TXAzimuthDeg: txAz, RXAzimuthDeg: rxAz, AntennaGainDBi: gain,
	})
	return nil
}

func parseFR(f []string, l *License) error {
	if err := wantFields(f, 4); err != nil {
		return err
	}
	num, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad path number %q", f[2])
	}
	freq, err := strconv.ParseFloat(f[3], 64)
	if err != nil || freq <= 0 {
		return fmt.Errorf("bad frequency %q", f[3])
	}
	for i := range l.Paths {
		if l.Paths[i].Number == num {
			l.Paths[i].FrequenciesMHz = append(l.Paths[i].FrequenciesMHz, freq)
			return nil
		}
	}
	return fmt.Errorf("FR record for unknown path %d", num)
}
