package uls

import (
	"sort"
)

// Temporal event log (§4). The date-interval index answers "who was
// active on date D" as a stabbing query; the event log is the dual
// view: the corpus as a sorted stream of grant/cancel/expire events.
// Longitudinal analyses that sweep many dates — and the streaming
// replay endpoint — advance a cursor over this log instead of issuing
// one stabbing query per date: between two consecutive events the
// active set cannot change, so every date in the gap shares one
// snapshot, and the set at event i+1 is the set at event i patched by
// one event. Like the other derived indexes, the log is built lazily
// on first use and invalidated by database mutation.

// EventKind classifies one lifecycle transition.
type EventKind uint8

const (
	// EventGrant activates a license (its grant date arrived).
	EventGrant EventKind = iota
	// EventCancel deactivates a license on its cancellation date.
	EventCancel
	// EventExpire deactivates a license on its expiration date.
	EventExpire
)

// String renders the kind for wire formats and logs.
func (k EventKind) String() string {
	switch k {
	case EventGrant:
		return "grant"
	case EventCancel:
		return "cancel"
	default:
		return "expire"
	}
}

// Activates reports whether the event adds its license to the active
// set (as opposed to retracting it).
func (k EventKind) Activates() bool { return k == EventGrant }

// Event is one lifecycle transition: from Date (inclusive) onward the
// license is active (EventGrant) or no longer active (EventCancel /
// EventExpire). Applying, in order, every event with Date ≤ d to an
// empty set yields exactly the ActiveAt(d) set — the replay identity
// the delta snapshot engine is built on.
type Event struct {
	Date    Date
	Kind    EventKind
	License *License
}

// eventSeq is one sorted event stream plus the prefix active counts:
// active[i] is the number of active licenses after applying the first
// i events.
type eventSeq struct {
	events []Event
	active []int32
}

// EventLog is the corpus as sorted lifecycle events, whole-database
// and per licensee. It is immutable once built; a Database hands out
// one log per generation.
type EventLog struct {
	all        eventSeq
	byLicensee map[string]eventSeq
}

// eventLess orders events by date, then call sign, then kind. Within
// one license and date the grant sorts before the retraction, so a
// zero-length interval (grant == cancellation) replays to "inactive" —
// matching the interval index, which never yields such licenses.
func eventLess(a, b Event) bool {
	ak, bk := dateKey(a.Date), dateKey(b.Date)
	if ak != bk {
		return ak < bk
	}
	if a.License.CallSign != b.License.CallSign {
		return a.License.CallSign < b.License.CallSign
	}
	return a.Kind < b.Kind
}

func newEventSeq(events []Event) eventSeq {
	sort.Slice(events, func(i, j int) bool { return eventLess(events[i], events[j]) })
	active := make([]int32, len(events)+1)
	for i, ev := range events {
		if ev.Kind.Activates() {
			active[i+1] = active[i] + 1
		} else {
			active[i+1] = active[i] - 1
		}
	}
	return eventSeq{events: events, active: active}
}

// buildEventLog derives the log from the licenses, with the same
// activity rule as the date-interval index: a license is active over
// [grant, min(cancellation, expiration)), and licenses with no grant
// date are never active.
func buildEventLog(licenses []*License) *EventLog {
	var all []Event
	per := make(map[string][]Event)
	add := func(ev Event) {
		all = append(all, ev)
		per[ev.License.Licensee] = append(per[ev.License.Licensee], ev)
	}
	for _, l := range licenses {
		if l.Grant.IsZero() {
			continue
		}
		add(Event{Date: l.Grant, Kind: EventGrant, License: l})
		end, kind := Date{}, EventCancel
		if !l.Cancellation.IsZero() {
			end = l.Cancellation
		}
		if !l.Expiration.IsZero() && (end.IsZero() || dateKey(l.Expiration) < dateKey(end)) {
			end, kind = l.Expiration, EventExpire
		}
		if !end.IsZero() {
			add(Event{Date: end, Kind: kind, License: l})
		}
	}
	log := &EventLog{all: newEventSeq(all), byLicensee: make(map[string]eventSeq, len(per))}
	for name, evs := range per {
		log.byLicensee[name] = newEventSeq(evs)
	}
	return log
}

// seq returns the stream for one licensee ("" = whole database).
func (el *EventLog) seq(licensee string) eventSeq {
	if licensee == "" {
		return el.all
	}
	return el.byLicensee[licensee]
}

// Events returns the sorted event stream for the licensee ("" = the
// whole database). The returned slice is shared; callers must not
// mutate it.
func (el *EventLog) Events(licensee string) []Event {
	return el.seq(licensee).events
}

// Len returns the total number of events in the log.
func (el *EventLog) Len() int { return len(el.all.events) }

// CursorAt returns the number of events with Date ≤ d in the
// licensee's stream — the replay cursor position for date d, and the
// index of the first event strictly after d.
func (el *EventLog) CursorAt(licensee string, d Date) int {
	return cursorAt(el.seq(licensee).events, d)
}

// EventCursorAt is CursorAt over a caller-held event slice (e.g. a
// MergedEvents stream): the number of events with Date ≤ d.
func EventCursorAt(events []Event, d Date) int {
	return cursorAt(events, d)
}

func cursorAt(events []Event, d Date) int {
	key := dateKey(d)
	return sort.Search(len(events), func(i int) bool {
		return dateKey(events[i].Date) > key
	})
}

// AnchorDate returns the date of the last event at or before d in the
// licensee's stream — the earliest date whose snapshot is identical to
// d's. The zero Date means no event has happened yet (empty network).
func (el *EventLog) AnchorDate(licensee string, d Date) Date {
	events := el.seq(licensee).events
	i := cursorAt(events, d)
	if i == 0 {
		return Date{}
	}
	return events[i-1].Date
}

// ActiveCount returns the number of the licensee's licenses in force on
// d, from the prefix counts — O(log events), versus ActiveCountByLicensee's
// full per-licensee map. The two agree on every date.
func (el *EventLog) ActiveCount(licensee string, d Date) int {
	s := el.seq(licensee)
	if len(s.events) == 0 { // unknown licensee, or empty corpus
		return 0
	}
	return int(s.active[cursorAt(s.events, d)])
}

// MergedEvents returns one sorted stream combining the named
// licensees' events (names must be distinct; an empty list or a ""
// entry selects the whole database). The slice is freshly allocated
// except in the whole-database and single-licensee cases, where the
// shared slice is returned.
func (el *EventLog) MergedEvents(licensees []string) []Event {
	if len(licensees) == 0 {
		return el.all.events
	}
	for _, name := range licensees {
		if name == "" {
			return el.all.events
		}
	}
	if len(licensees) == 1 {
		return el.seq(licensees[0]).events
	}
	var merged []Event
	for _, name := range licensees {
		merged = append(merged, el.seq(name).events...)
	}
	sort.Slice(merged, func(i, j int) bool { return eventLess(merged[i], merged[j]) })
	return merged
}

// EventLog returns the lazily built temporal event log (mirrors the
// date-interval index: built on first use, discarded on mutation). The
// returned log is immutable and stays valid for the generation it was
// built against; callers that cache it should re-fetch after
// Generation changes.
func (db *Database) EventLog() *EventLog {
	db.eventMu.Lock()
	defer db.eventMu.Unlock()
	if db.events == nil {
		db.events = buildEventLog(db.licenses)
	}
	return db.events
}
