package uls

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"hftnetview/internal/geo"
)

// scatterDB builds a database of licenses scattered over the corridor
// bounding box.
func scatterDB(t testing.TB, n int) *Database {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 9))
	db := NewDatabase()
	for i := 0; i < n; i++ {
		a := geo.Point{
			Lat: 39 + rng.Float64()*4,
			Lon: -89 + rng.Float64()*15,
		}
		b := geo.Point{Lat: a.Lat + 0.1 + 0.3*rng.Float64(), Lon: a.Lon + 0.2}
		l := &License{
			CallSign: fmt.Sprintf("WQSP%04d", i), LicenseID: i + 1,
			Licensee: "Scatter Net", FRN: "0000000077",
			RadioService: ServiceMG, Status: StatusActive,
			Grant: NewDate(2015, time.June, 1),
			Locations: []Location{
				{Number: 1, Point: a, GroundElevation: 100, SupportHeight: 80},
				{Number: 2, Point: b, GroundElevation: 100, SupportHeight: 80},
			},
			Paths: []Path{{Number: 1, TXLocation: 1, RXLocation: 2,
				StationClass: ClassFXO, FrequenciesMHz: []float64{6004.5}}},
		}
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestWithinRadiusIndexedMatchesScan(t *testing.T) {
	db := scatterDB(t, 600)
	rng := rand.New(rand.NewPCG(11, 2))
	for trial := 0; trial < 40; trial++ {
		center := geo.Point{
			Lat: 39 + rng.Float64()*4,
			Lon: -89 + rng.Float64()*15,
		}
		radius := 1e3 + rng.Float64()*80e3
		scan := db.WithinRadius(center, radius)
		indexed := db.WithinRadiusIndexed(center, radius)
		if len(scan) != len(indexed) {
			t.Fatalf("trial %d: scan %d vs indexed %d (radius %.0f km)",
				trial, len(scan), len(indexed), radius/1000)
		}
		for i := range scan {
			if scan[i].CallSign != indexed[i].CallSign {
				t.Fatalf("trial %d: result %d differs: %s vs %s",
					trial, i, scan[i].CallSign, indexed[i].CallSign)
			}
		}
	}
}

func TestWithinRadiusIndexedInvalidation(t *testing.T) {
	db := scatterDB(t, 50)
	center := geo.Point{Lat: 41, Lon: -80}
	before := len(db.WithinRadiusIndexed(center, 50e3))
	// Add a license right at the center; the index must pick it up.
	l := testLicense("WQSPNEW", "Scatter Net", NewDate(2016, time.March, 1), Date{})
	l.Locations[0].Point = center
	l.Locations[1].Point = geo.Point{Lat: 41.1, Lon: -80.1}
	if err := db.Add(l); err != nil {
		t.Fatal(err)
	}
	after := len(db.WithinRadiusIndexed(center, 50e3))
	if after != before+1 {
		t.Errorf("after Add: %d results, want %d", after, before+1)
	}
}

func TestWithinRadiusIndexedConcurrent(t *testing.T) {
	db := scatterDB(t, 300)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0))
			for i := 0; i < 50; i++ {
				center := geo.Point{Lat: 39 + rng.Float64()*4, Lon: -89 + rng.Float64()*15}
				db.WithinRadiusIndexed(center, 30e3)
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestWithinRadiusIndexedEdgeCases(t *testing.T) {
	db := NewDatabase()
	if got := db.WithinRadiusIndexed(geo.Point{Lat: 41, Lon: -80}, 10e3); len(got) != 0 {
		t.Errorf("empty db: %d results", len(got))
	}
	// Tiny radius finds only the exact site.
	full := scatterDB(t, 100)
	l, _ := full.ByCallSign("WQSP0000")
	pt := l.Locations[0].Point
	got := full.WithinRadiusIndexed(pt, 1)
	found := false
	for _, g := range got {
		if g.CallSign == "WQSP0000" {
			found = true
		}
	}
	if !found {
		t.Error("1 m search at a site missed its license")
	}
}
