package uls

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hftnetview/internal/geo"
)

func TestBulkRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBulk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), db.Len())
	}
	for _, want := range db.All() {
		l, ok := got.ByCallSign(want.CallSign)
		if !ok {
			t.Fatalf("lost license %s", want.CallSign)
		}
		if l.Licensee != want.Licensee || l.FRN != want.FRN ||
			l.ContactEmail != want.ContactEmail ||
			l.RadioService != want.RadioService || l.Status != want.Status {
			t.Errorf("%s header mismatch: %+v vs %+v", want.CallSign, l, want)
		}
		if l.Grant != want.Grant || l.Expiration != want.Expiration ||
			l.Cancellation != want.Cancellation {
			t.Errorf("%s dates mismatch", want.CallSign)
		}
		if len(l.Locations) != len(want.Locations) {
			t.Fatalf("%s locations = %d, want %d", want.CallSign, len(l.Locations), len(want.Locations))
		}
		for i := range l.Locations {
			// DMS has 0.1" (~3 m) resolution.
			if geo.Distance(l.Locations[i].Point, want.Locations[i].Point) > 5 {
				t.Errorf("%s location %d moved", want.CallSign, i)
			}
			if l.Locations[i].SupportHeight != want.Locations[i].SupportHeight {
				t.Errorf("%s location %d height mismatch", want.CallSign, i)
			}
		}
		if len(l.Paths) != len(want.Paths) {
			t.Fatalf("%s paths = %d, want %d", want.CallSign, len(l.Paths), len(want.Paths))
		}
		for i := range l.Paths {
			if len(l.Paths[i].FrequenciesMHz) != len(want.Paths[i].FrequenciesMHz) {
				t.Errorf("%s path %d frequencies = %d, want %d", want.CallSign, i,
					len(l.Paths[i].FrequenciesMHz), len(want.Paths[i].FrequenciesMHz))
			}
			if l.Paths[i].StationClass != want.Paths[i].StationClass {
				t.Errorf("%s path %d class mismatch", want.CallSign, i)
			}
		}
	}
}

func TestBulkDeterministicOutput(t *testing.T) {
	db := buildTestDB(t)
	var a, b bytes.Buffer
	if err := WriteBulk(&a, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteBulk(&b, db); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteBulk output not deterministic")
	}
}

func TestBulkCommentsAndBlankLines(t *testing.T) {
	db := buildTestDB(t)
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	decorated := "# ULS bulk extract\n\n" + strings.ReplaceAll(buf.String(), "\n", "\n\n")
	got, err := ReadBulk(strings.NewReader(decorated))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("Len = %d, want %d", got.Len(), db.Len())
	}
}

func TestBulkCRLF(t *testing.T) {
	db := buildTestDB(t)
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	got, err := ReadBulk(strings.NewReader(crlf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("Len = %d, want %d", got.Len(), db.Len())
	}
}

func TestBulkInterleavedRecords(t *testing.T) {
	// Records for two licenses interleaved after their HD records.
	in := strings.Join([]string{
		"HD|WQXX001|1|MG|A|06/01/2015||",
		"HD|WQXX002|2|MG|A|07/01/2015||",
		"EN|WQXX002|Net Two|0002|ops@nettwo.example",
		"EN|WQXX001|Net One|0001|noc@netone.example",
		"LO|WQXX001|1|41-45-00.0 N|88-12-00.0 W|200.0|100.0",
		"LO|WQXX002|1|41-45-00.0 N|88-12-00.0 W|200.0|90.0",
		"LO|WQXX001|2|41-42-00.0 N|87-42-00.0 W|190.0|100.0",
		"LO|WQXX002|2|41-42-00.0 N|87-42-00.0 W|190.0|90.0",
		"PA|WQXX001|1|1|2|FXO|96.5|276.5|41.8",
		"PA|WQXX002|1|1|2|FXO|96.5|276.5|38.5",
		"FR|WQXX001|1|10995.0",
		"FR|WQXX002|1|6004.5",
	}, "\n")
	db, err := ReadBulk(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	l1, _ := db.ByCallSign("WQXX001")
	if l1.Licensee != "Net One" || l1.Paths[0].FrequenciesMHz[0] != 10995.0 {
		t.Errorf("WQXX001 parsed wrong: %+v", l1)
	}
}

func TestBulkParseErrors(t *testing.T) {
	hd := "HD|WQER001|1|MG|A|06/01/2015||"
	en := "EN|WQER001|Err Net|0001|x@err.example"
	lo1 := "LO|WQER001|1|41-45-00.0 N|88-12-00.0 W|200.0|100.0"
	lo2 := "LO|WQER001|2|41-42-00.0 N|87-42-00.0 W|190.0|100.0"
	pa := "PA|WQER001|1|1|2|FXO|96.5|276.5|41.8"

	cases := []struct {
		name    string
		lines   []string
		wantSub string
	}{
		{"record before HD", []string{en}, "precedes its HD"},
		{"duplicate HD", []string{hd, hd}, "duplicate HD"},
		{"unknown type", []string{hd, "ZZ|WQER001|x"}, "unknown record type"},
		{"short line", []string{"HD"}, "too few fields"},
		{"empty call sign", []string{"HD||1|MG|A|06/01/2015||"}, "empty call sign"},
		{"bad license id", []string{"HD|WQER001|xx|MG|A|06/01/2015||"}, "bad license id"},
		{"bad status", []string{"HD|WQER001|1|MG|Q|06/01/2015||"}, "unknown status"},
		{"bad grant date", []string{"HD|WQER001|1|MG|A|13/45/2015||"}, "date"},
		{"HD wrong arity", []string{"HD|WQER001|1|MG|A|06/01/2015|"}, "want 8 fields"},
		{"duplicate EN", []string{hd, en, en}, "duplicate EN"},
		{"empty licensee", []string{hd, "EN|WQER001||0001|x@err.example"}, "empty licensee"},
		{"bad location number", []string{hd, en, "LO|WQER001|x|41-45-00.0 N|88-12-00.0 W|200.0|100.0"}, "bad location number"},
		{"bad latitude", []string{hd, en, "LO|WQER001|1|garbage|88-12-00.0 W|200.0|100.0"}, "DMS"},
		{"swapped axes", []string{hd, en, "LO|WQER001|1|88-12-00.0 W|41-45-00.0 N|200.0|100.0"}, "latitude"},
		{"bad elevation", []string{hd, en, "LO|WQER001|1|41-45-00.0 N|88-12-00.0 W|x|100.0"}, "ground elevation"},
		{"bad height", []string{hd, en, "LO|WQER001|1|41-45-00.0 N|88-12-00.0 W|200.0|x"}, "support height"},
		{"bad path tx", []string{hd, en, lo1, lo2, "PA|WQER001|1|x|2|FXO|96.5|276.5|41.8"}, "bad tx"},
		{"bad azimuth", []string{hd, en, lo1, lo2, "PA|WQER001|1|1|2|FXO|x|276.5|41.8"}, "bad tx azimuth"},
		{"bad gain", []string{hd, en, lo1, lo2, "PA|WQER001|1|1|2|FXO|96.5|276.5|x"}, "bad antenna gain"},
		{"PA wrong arity", []string{hd, en, lo1, lo2, "PA|WQER001|1|1|2|FXO"}, "want 9 fields"},
		{"bad frequency", []string{hd, en, lo1, lo2, pa, "FR|WQER001|1|-5"}, "bad frequency"},
		{"FR unknown path", []string{hd, en, lo1, lo2, pa, "FR|WQER001|7|6000.0"}, "unknown path"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBulk(strings.NewReader(strings.Join(c.lines, "\n")))
			if err == nil {
				t.Fatal("ReadBulk succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestBulkParseErrorLineNumber(t *testing.T) {
	in := "# comment\nHD|WQER001|1|MG|A|06/01/2015||\nEN|WQER001|Err Net|0001|x@err.example\nZZ|WQER001|x\n"
	_, err := ReadBulk(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("ParseError.Line = %d, want 4", pe.Line)
	}
}

// TestBulkRoundTripQuick fuzzes license shapes through the bulk format.
func TestBulkRoundTripQuick(t *testing.T) {
	f := func(id uint16, nLocs, nFreqs uint8, cancelOffset uint16) bool {
		locs := int(nLocs%5) + 2   // 2..6 towers
		freqs := int(nFreqs%3) + 1 // 1..3 frequencies
		l := &License{
			CallSign:     "WQQK001",
			LicenseID:    int(id),
			Licensee:     "Quick Net",
			FRN:          "0099",
			RadioService: ServiceMG,
			Status:       StatusActive,
			Grant:        NewDate(2014, time.March, 1),
		}
		if cancelOffset%2 == 0 {
			l.Cancellation = l.Grant.AddDays(int(cancelOffset) + 1)
		}
		for i := 0; i < locs; i++ {
			l.Locations = append(l.Locations, Location{
				Number: i + 1,
				Point: geo.Point{
					Lat: 41 + float64(i)*0.05,
					Lon: -88 + float64(i)*0.3,
				},
				GroundElevation: 200,
				SupportHeight:   100,
			})
		}
		for i := 0; i < locs-1; i++ {
			p := Path{Number: i + 1, TXLocation: i + 1, RXLocation: i + 2, StationClass: ClassFXO}
			for j := 0; j < freqs; j++ {
				p.FrequenciesMHz = append(p.FrequenciesMHz, 6000+float64(j)*29.65)
			}
			l.Paths = append(l.Paths, p)
		}
		db := NewDatabase()
		if err := db.Add(l); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBulk(&buf, db); err != nil {
			return false
		}
		got, err := ReadBulk(&buf)
		if err != nil {
			return false
		}
		rl, ok := got.ByCallSign("WQQK001")
		return ok && len(rl.Locations) == locs && len(rl.Paths) == locs-1 &&
			rl.Cancellation == l.Cancellation &&
			len(rl.Paths[0].FrequenciesMHz) == freqs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
