package uls

import (
	"fmt"
	"sort"
	"strings"

	"hftnetview/internal/geo"
)

// Cross-record integrity validation.
//
// License.Validate guards single filings at Add time; this file checks
// the kinds of inconsistency a salvaged or hand-assembled corpus can
// carry *across* records — paths pointing at locations that were
// dropped, paths with no surviving frequencies, towers far outside the
// corridor, lifecycle-date inversions — and can optionally repair a
// database in place by removing only the inconsistent sub-records.

// Bounds is a geographic bounding box (degrees).
type Bounds struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Contains reports whether the point lies inside the box (inclusive).
func (b Bounds) Contains(p geo.Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

func (b Bounds) String() string {
	return fmt.Sprintf("[%.3f,%.3f]x[%.3f,%.3f]", b.MinLat, b.MaxLat, b.MinLon, b.MaxLon)
}

// ValidateOptions configures the integrity pass.
type ValidateOptions struct {
	// Bounds, when non-nil, flags locations outside the box.
	Bounds *Bounds
	// Repair removes the inconsistent sub-records (bad locations, the
	// paths referencing them, non-positive frequencies, frequency-less
	// paths) instead of just reporting them. Issues that have no
	// droppable sub-record (date inversions, missing licensee) are
	// always report-only.
	Repair bool
}

// ValidationReport is the deterministic outcome of Validate.
type ValidationReport struct {
	Licenses int           // licenses examined
	Issues   []RecordError // in call-sign order, Line always 0
	Repaired int           // sub-records removed (0 unless Repair)
	ByClass  map[ErrorClass]int
}

// Clean reports whether no issues were found.
func (r *ValidationReport) Clean() bool { return len(r.Issues) == 0 }

// String renders a compact deterministic summary.
func (r *ValidationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "validate: licenses=%d issues=%d repaired=%d\n",
		r.Licenses, len(r.Issues), r.Repaired)
	keys := make([]string, 0, len(r.ByClass))
	for k := range r.ByClass {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		b.WriteString("  by class:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.ByClass[ErrorClass(k)])
		}
		b.WriteByte('\n')
	}
	for _, is := range r.Issues {
		fmt.Fprintf(&b, "  %s\n", is.Error())
	}
	return b.String()
}

// Validate runs the cross-record integrity pass over every license in
// the database. With opts.Repair it drops the inconsistent sub-records
// in place (and invalidates the database's derived indexes); without it
// the database is left untouched. The report lists issues in call-sign
// order and is identical across runs on identical input.
func Validate(db *Database, opts ValidateOptions) *ValidationReport {
	rep := &ValidationReport{ByClass: make(map[ErrorClass]int)}
	for _, l := range db.All() {
		rep.Licenses++
		for _, is := range auditLicense(l, opts.Bounds, opts.Repair) {
			e := is.toRecordError(l.CallSign)
			rep.Issues = append(rep.Issues, e)
			rep.ByClass[e.Class]++
			if is.repaired {
				rep.Repaired++
			}
		}
	}
	if rep.Repaired > 0 {
		db.invalidate()
	}
	return rep
}

// auditIssue is one cross-record inconsistency found in a license.
type auditIssue struct {
	recordType string
	class      ErrorClass
	err        error
	repaired   bool // the offending sub-record was removed
}

func (is auditIssue) toRecordError(cs string) RecordError {
	return RecordError{CallSign: cs, RecordType: is.recordType, Class: is.class, Err: is.err}
}

// auditLicense checks one license for cross-record inconsistencies,
// mirroring License.Validate's structural rules plus the corpus-level
// ones (bounds, grant/expiration ordering). With repair it removes the
// offending sub-records — dropping a location also condemns the paths
// that reference it — leaving the license as close to Add-able as its
// surviving records allow. Issues are reported in record order.
func auditLicense(l *License, bounds *Bounds, repair bool) []auditIssue {
	var issues []auditIssue
	report := func(typ string, class ErrorClass, format string, args ...any) *auditIssue {
		issues = append(issues, auditIssue{
			recordType: typ, class: class,
			err: fmt.Errorf(format, args...),
		})
		return &issues[len(issues)-1]
	}

	// Locations first: structural checks, then bounds. Paths are
	// audited against the surviving location set.
	locSeen := make(map[int]bool, len(l.Locations))
	keptLocs := l.Locations[:0:0]
	for _, loc := range l.Locations {
		var is *auditIssue
		switch {
		case loc.Number <= 0:
			is = report("LO", ClassRange, "non-positive location number %d", loc.Number)
		case locSeen[loc.Number]:
			is = report("LO", ClassDuplicate, "duplicate location number %d", loc.Number)
		case !loc.Point.Valid():
			is = report("LO", ClassRange, "location %d has invalid coordinates %v", loc.Number, loc.Point)
		case bounds != nil && !bounds.Contains(loc.Point):
			is = report("LO", ClassRange, "location %d at %v outside bounds %v", loc.Number, loc.Point, *bounds)
		}
		if is == nil {
			locSeen[loc.Number] = true
			keptLocs = append(keptLocs, loc)
			continue
		}
		if repair {
			is.repaired = true
		} else if loc.Number > 0 && !locSeen[loc.Number] {
			// Report-only pass: later references to this location are
			// still resolvable, so count it as present.
			locSeen[loc.Number] = true
		}
	}
	if repair {
		l.Locations = keptLocs
	}

	pathSeen := make(map[int]bool, len(l.Paths))
	keptPaths := l.Paths[:0:0]
	for pi := range l.Paths {
		p := &l.Paths[pi]
		// Frequencies are sub-records of the path: drop the bad ones
		// before judging the path itself.
		keptFreqs := p.FrequenciesMHz[:0:0]
		for _, f := range p.FrequenciesMHz {
			if f <= 0 {
				is := report("FR", ClassRange, "path %d has non-positive frequency %v", p.Number, f)
				is.repaired = repair
				continue
			}
			keptFreqs = append(keptFreqs, f)
		}
		if repair {
			p.FrequenciesMHz = keptFreqs
		}
		nFreq := len(keptFreqs)
		if !repair {
			nFreq = len(p.FrequenciesMHz)
		}

		var is *auditIssue
		switch {
		case p.Number <= 0:
			is = report("PA", ClassRange, "non-positive path number %d", p.Number)
		case pathSeen[p.Number]:
			is = report("PA", ClassDuplicate, "duplicate path number %d", p.Number)
		case !locSeen[p.TXLocation]:
			is = report("PA", ClassReferential, "path %d references missing TX location %d", p.Number, p.TXLocation)
		case !locSeen[p.RXLocation]:
			is = report("PA", ClassReferential, "path %d references missing RX location %d", p.Number, p.RXLocation)
		case p.TXLocation == p.RXLocation:
			is = report("PA", ClassRange, "path %d is a self loop at location %d", p.Number, p.TXLocation)
		case nFreq == 0:
			is = report("PA", ClassRange, "path %d has no frequencies", p.Number)
		case p.TXAzimuthDeg < 0 || p.TXAzimuthDeg >= 360 || p.RXAzimuthDeg < 0 || p.RXAzimuthDeg >= 360:
			is = report("PA", ClassRange, "path %d azimuth out of [0,360)", p.Number)
		case p.AntennaGainDBi < 0:
			is = report("PA", ClassRange, "path %d negative antenna gain", p.Number)
		}
		if is == nil {
			pathSeen[p.Number] = true
			keptPaths = append(keptPaths, *p)
			continue
		}
		if repair {
			is.repaired = true
		} else if p.Number > 0 && !pathSeen[p.Number] {
			pathSeen[p.Number] = true
		}
	}
	if repair {
		l.Paths = keptPaths
	}

	// Lifecycle checks have no droppable sub-record: report-only.
	if !l.Grant.IsZero() && !l.Expiration.IsZero() && l.Expiration.Before(l.Grant) {
		report("HD", ClassRange, "grant %s after expiration %s", l.Grant, l.Expiration)
	}
	return issues
}
