package uls

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

// randomLifecycleDB builds a database of licenses with randomized but
// reproducible lifecycles: mixed licensees, some never-ending, some
// cancelled, some expired, some both.
func randomLifecycleDB(t *testing.T, n int) *Database {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 7))
	db := NewDatabase()
	licensees := []string{"Alpha", "Beta", "Gamma", "Delta"}
	for i := 0; i < n; i++ {
		grant := NewDate(2010+rng.IntN(10), time.Month(1+rng.IntN(12)), 1+rng.IntN(28))
		l := testLicense(fmt.Sprintf("WQRL%03d", i), licensees[rng.IntN(len(licensees))],
			grant, Date{})
		switch rng.IntN(4) {
		case 0: // cancelled
			l.Cancellation = grant.AddDays(1 + rng.IntN(2000))
		case 1: // expired
			l.Expiration = grant.AddDays(1 + rng.IntN(2000))
		case 2: // both on file; the earlier one ends the license
			l.Cancellation = grant.AddDays(1 + rng.IntN(2000))
			l.Expiration = grant.AddDays(1 + rng.IntN(2000))
		}
		if err := db.Add(l); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return db
}

// bruteActive is the reference implementation the index must match.
func bruteActive(db *Database, licensee string, d Date) []*License {
	var out []*License
	for _, l := range db.All() {
		if licensee != "" && l.Licensee != licensee {
			continue
		}
		if l.ActiveAt(d) {
			out = append(out, l)
		}
	}
	return out
}

func TestDateIndexMatchesBruteForce(t *testing.T) {
	db := randomLifecycleDB(t, 200)
	rng := rand.New(rand.NewPCG(3, 9))
	probes := []Date{{}} // zero date: nothing active
	for i := 0; i < 50; i++ {
		probes = append(probes, NewDate(2009+rng.IntN(14),
			time.Month(1+rng.IntN(12)), 1+rng.IntN(28)))
	}
	for _, d := range probes {
		for _, licensee := range []string{"", "Alpha", "Beta", "NoSuch"} {
			want := bruteActive(db, licensee, d)
			var got []*License
			db.dateIndex().set(licensee).stab(dateKey(d), func(l *License) {
				got = append(got, l)
			})
			SortLicenses(got)
			if len(got) != len(want) {
				t.Fatalf("active(%q, %s) = %d licenses, want %d", licensee, d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("active(%q, %s)[%d] = %s, want %s",
						licensee, d, i, got[i].CallSign, want[i].CallSign)
				}
			}
		}
	}
}

func TestDateIndexLifecycleBoundaries(t *testing.T) {
	grant := NewDate(2015, time.June, 1)
	cancel := NewDate(2018, time.March, 15)
	db := NewDatabase()
	if err := db.Add(testLicense("WQBD001", "Boundary", grant, cancel)); err != nil {
		t.Fatal(err)
	}
	exp := testLicense("WQBD002", "Boundary", grant, Date{})
	exp.Expiration = NewDate(2020, time.January, 1)
	if err := db.Add(exp); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		date string
		want int
	}{
		{"05/31/2015", 0}, // day before grant
		{"06/01/2015", 2}, // grant day: active
		{"03/14/2018", 2}, // day before cancellation
		{"03/15/2018", 1}, // cancellation day: first license inactive
		{"12/31/2019", 1}, // day before expiration
		{"01/01/2020", 0}, // expiration day: second license inactive
	}
	for _, c := range cases {
		got := len(db.ActiveAt(MustParseDate(c.date)))
		if got != c.want {
			t.Errorf("ActiveAt(%s) = %d licenses, want %d", c.date, got, c.want)
		}
	}
}

func TestDateIndexInvalidatedByAdd(t *testing.T) {
	db := NewDatabase()
	grant := NewDate(2015, time.June, 1)
	if err := db.Add(testLicense("WQIV001", "Inval", grant, Date{})); err != nil {
		t.Fatal(err)
	}
	d := NewDate(2016, time.January, 1)
	if got := len(db.ActiveAt(d)); got != 1 {
		t.Fatalf("ActiveAt before second Add = %d, want 1", got)
	}
	gen := db.Generation()
	if err := db.Add(testLicense("WQIV002", "Inval", grant, Date{})); err != nil {
		t.Fatal(err)
	}
	if db.Generation() == gen {
		t.Error("Generation did not change on Add")
	}
	if got := len(db.ActiveAt(d)); got != 2 {
		t.Errorf("ActiveAt after second Add = %d, want 2 (stale index?)", got)
	}
	if got := db.ActiveCountByLicensee(d)["Inval"]; got != 2 {
		t.Errorf("ActiveCountByLicensee after Add = %d, want 2", got)
	}
}

func TestActiveLinksIndexedDeterministic(t *testing.T) {
	db := randomLifecycleDB(t, 50)
	d := NewDate(2018, time.June, 1)
	first := db.ActiveLinks("Alpha", d)
	second := db.ActiveLinks("Alpha", d)
	if len(first) == 0 {
		t.Fatal("expected some active links")
	}
	for i := range first {
		if first[i].CallSign != second[i].CallSign || first[i].PathNumber != second[i].PathNumber {
			t.Fatalf("ActiveLinks not deterministic at %d", i)
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].CallSign > first[i].CallSign {
			t.Fatalf("ActiveLinks not in call-sign order: %s > %s",
				first[i-1].CallSign, first[i].CallSign)
		}
	}
}
