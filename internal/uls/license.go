// Package uls models FCC Universal Licensing System (ULS) microwave
// licenses — the public data source the paper reconstructs HFT networks
// from (§2.1) — together with a license database and the pipe-delimited
// bulk interchange format.
//
// A license couples one licensee to a transmitting site and one or more
// receiving sites, with per-path operating frequencies, under a radio
// service code (HFT networks use 'MG', Microwave Industrial/Business
// Pool) and a station class ('FXO', Operational Fixed). Grant,
// expiration, and cancellation dates let the database answer "which links
// existed on date D", the primitive behind the paper's longitudinal
// analysis (§4).
package uls

import (
	"fmt"
	"sort"

	"hftnetview/internal/geo"
)

// Radio service codes and station classes relevant to the study (§2.2).
const (
	// ServiceMG is the Microwave Industrial/Business Pool radio service
	// code under which corridor HFT links are licensed.
	ServiceMG = "MG"
	// ClassFXO is the Operational Fixed station class.
	ClassFXO = "FXO"
)

// Status is the lifecycle state recorded on a license.
type Status string

// License lifecycle states as carried in ULS records.
const (
	StatusActive     Status = "A"
	StatusCancelled  Status = "C"
	StatusExpired    Status = "E"
	StatusTerminated Status = "T"
)

// Location is a numbered site on a license: a tower (or data-center roof)
// with coordinates, ground elevation and structure height.
type Location struct {
	// Number is the 1-based location index within the license.
	Number int
	// Point is the site coordinate.
	Point geo.Point
	// GroundElevation is the site elevation above mean sea level, meters.
	GroundElevation float64
	// SupportHeight is the antenna support structure height above
	// ground, meters.
	SupportHeight float64
}

// Path is a numbered transmitter→receiver hop within a license, with its
// assigned operating frequencies.
type Path struct {
	// Number is the 1-based path index within the license.
	Number int
	// TXLocation and RXLocation are Location.Number references.
	TXLocation int
	RXLocation int
	// StationClass is the assigned station class (ClassFXO for links in
	// this study).
	StationClass string
	// FrequenciesMHz lists the assigned center frequencies in MHz.
	FrequenciesMHz []float64
	// TXAzimuthDeg and RXAzimuthDeg are the antenna pointing azimuths
	// (degrees true) at each end of the hop; point-to-point dishes face
	// each other, so the RX azimuth is the back bearing of the TX one.
	TXAzimuthDeg, RXAzimuthDeg float64
	// AntennaGainDBi is the dish gain filed for the path.
	AntennaGainDBi float64
}

// License is one ULS license filing.
type License struct {
	// CallSign is the FCC call sign (e.g. "WQYM237") and the primary key.
	CallSign string
	// LicenseID is the numeric ULS record id.
	LicenseID int
	// Licensee is the entity name as filed, which — as the paper notes —
	// is often a shell name rather than the operating network's name.
	Licensee string
	// FRN is the FCC Registration Number of the licensee.
	FRN string
	// ContactEmail is the filing contact address — often the clearest
	// public hint that two filing entities share an operator (§6).
	ContactEmail string
	// RadioService is the radio service code (ServiceMG here).
	RadioService string
	// Status is the current lifecycle state.
	Status Status
	// Grant, Expiration and Cancellation are the lifecycle dates; zero
	// means not on file.
	Grant        Date
	Expiration   Date
	Cancellation Date
	// Locations are the numbered sites, and Paths the hops among them.
	Locations []Location
	Paths     []Path
}

// LocationByNumber returns the numbered location and whether it exists.
func (l *License) LocationByNumber(n int) (Location, bool) {
	for _, loc := range l.Locations {
		if loc.Number == n {
			return loc, true
		}
	}
	return Location{}, false
}

// ActiveAt reports whether the license was in force on date d: granted on
// or before d and neither cancelled nor expired on or before d. This is
// the activity rule of §2.3 ("granted but not terminated/cancelled").
func (l *License) ActiveAt(d Date) bool {
	if l.Grant.IsZero() || d.Before(l.Grant) {
		return false
	}
	if !l.Cancellation.IsZero() && !d.Before(l.Cancellation) {
		return false
	}
	if !l.Expiration.IsZero() && !d.Before(l.Expiration) {
		return false
	}
	return true
}

// Validate checks internal consistency: key fields present, locations
// valid and uniquely numbered, paths referencing existing locations with
// at least one frequency.
func (l *License) Validate() error {
	if l.CallSign == "" {
		return fmt.Errorf("uls: license missing call sign")
	}
	if l.Licensee == "" {
		return fmt.Errorf("uls: %s: missing licensee", l.CallSign)
	}
	if l.Grant.IsZero() {
		return fmt.Errorf("uls: %s: missing grant date", l.CallSign)
	}
	if !l.Cancellation.IsZero() && l.Cancellation.Before(l.Grant) {
		return fmt.Errorf("uls: %s: cancellation %s precedes grant %s",
			l.CallSign, l.Cancellation, l.Grant)
	}
	// Duplicate and reference checks run allocation-free over the
	// typical handful of sub-records; a map is built only for licenses
	// with unusually many locations (Validate sits on the hot boot path,
	// and two map allocations per license dominated its cost).
	const linearScanMax = 32
	var locSeen map[int]bool
	if len(l.Locations) > linearScanMax {
		locSeen = make(map[int]bool, len(l.Locations))
	}
	hasLoc := func(num int) bool {
		if locSeen != nil {
			return locSeen[num]
		}
		for i := range l.Locations {
			if l.Locations[i].Number == num {
				return true
			}
		}
		return false
	}
	for i := range l.Locations {
		loc := &l.Locations[i]
		if loc.Number <= 0 {
			return fmt.Errorf("uls: %s: non-positive location number %d", l.CallSign, loc.Number)
		}
		dup := false
		if locSeen != nil {
			dup = locSeen[loc.Number]
			locSeen[loc.Number] = true
		} else {
			for j := 0; j < i; j++ {
				if l.Locations[j].Number == loc.Number {
					dup = true
					break
				}
			}
		}
		if dup {
			return fmt.Errorf("uls: %s: duplicate location number %d", l.CallSign, loc.Number)
		}
		if !loc.Point.Valid() {
			return fmt.Errorf("uls: %s: location %d has invalid coordinates %v",
				l.CallSign, loc.Number, loc.Point)
		}
	}
	var pathSeen map[int]bool
	if len(l.Paths) > linearScanMax {
		pathSeen = make(map[int]bool, len(l.Paths))
	}
	for i := range l.Paths {
		p := &l.Paths[i]
		if p.Number <= 0 {
			return fmt.Errorf("uls: %s: non-positive path number %d", l.CallSign, p.Number)
		}
		dup := false
		if pathSeen != nil {
			dup = pathSeen[p.Number]
			pathSeen[p.Number] = true
		} else {
			for j := 0; j < i; j++ {
				if l.Paths[j].Number == p.Number {
					dup = true
					break
				}
			}
		}
		if dup {
			return fmt.Errorf("uls: %s: duplicate path number %d", l.CallSign, p.Number)
		}
		if !hasLoc(p.TXLocation) {
			return fmt.Errorf("uls: %s: path %d references missing TX location %d",
				l.CallSign, p.Number, p.TXLocation)
		}
		if !hasLoc(p.RXLocation) {
			return fmt.Errorf("uls: %s: path %d references missing RX location %d",
				l.CallSign, p.Number, p.RXLocation)
		}
		if p.TXLocation == p.RXLocation {
			return fmt.Errorf("uls: %s: path %d is a self loop at location %d",
				l.CallSign, p.Number, p.TXLocation)
		}
		if len(p.FrequenciesMHz) == 0 {
			return fmt.Errorf("uls: %s: path %d has no frequencies", l.CallSign, p.Number)
		}
		for _, f := range p.FrequenciesMHz {
			if f <= 0 {
				return fmt.Errorf("uls: %s: path %d has non-positive frequency %v",
					l.CallSign, p.Number, f)
			}
		}
		if p.TXAzimuthDeg < 0 || p.TXAzimuthDeg >= 360 ||
			p.RXAzimuthDeg < 0 || p.RXAzimuthDeg >= 360 {
			return fmt.Errorf("uls: %s: path %d azimuth out of [0,360)", l.CallSign, p.Number)
		}
		if p.AntennaGainDBi < 0 {
			return fmt.Errorf("uls: %s: path %d negative antenna gain", l.CallSign, p.Number)
		}
	}
	return nil
}

// Links materializes the license's paths as geographic hops, resolving
// the location references. Paths referencing missing locations are
// skipped (Validate catches them for strict callers).
func (l *License) Links() []Link {
	links := make([]Link, 0, len(l.Paths))
	for _, p := range l.Paths {
		tx, okT := l.LocationByNumber(p.TXLocation)
		rx, okR := l.LocationByNumber(p.RXLocation)
		if !okT || !okR {
			continue
		}
		links = append(links, Link{
			CallSign:       l.CallSign,
			Licensee:       l.Licensee,
			PathNumber:     p.Number,
			TX:             tx,
			RX:             rx,
			FrequenciesMHz: append([]float64(nil), p.FrequenciesMHz...),
		})
	}
	return links
}

// Link is a materialized microwave hop: the unit the reconstruction
// stitches into a network graph.
type Link struct {
	CallSign       string
	Licensee       string
	PathNumber     int
	TX, RX         Location
	FrequenciesMHz []float64
}

// LengthMeters returns the geodesic hop length.
func (lk Link) LengthMeters() float64 { return geo.Distance(lk.TX.Point, lk.RX.Point) }

// SortLicenses orders licenses by call sign for deterministic output.
func SortLicenses(ls []*License) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].CallSign < ls[j].CallSign })
}
