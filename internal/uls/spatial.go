package uls

import (
	"math"

	"hftnetview/internal/geo"
)

// Spatial index for the geographic search (§2.1). The portal serves
// radius queries on every page load; a degree-cell grid over license
// locations turns the O(licenses × locations) scan into a handful of
// cell lookups. The index is built lazily on first use and invalidated
// by Add.

// gridCellDeg is the index cell size in degrees (~55 km of latitude) —
// comfortably larger than typical search radii, so most queries touch
// at most four cells.
const gridCellDeg = 0.5

type gridKey struct{ latCell, lonCell int32 }

type spatialIndex struct {
	cells map[gridKey][]*License
}

func cellOf(p geo.Point) gridKey {
	return gridKey{
		latCell: int32(math.Floor(p.Lat / gridCellDeg)),
		lonCell: int32(math.Floor(p.Lon / gridCellDeg)),
	}
}

func buildSpatialIndex(licenses []*License) *spatialIndex {
	idx := &spatialIndex{cells: make(map[gridKey][]*License)}
	for _, l := range licenses {
		seen := make(map[gridKey]bool, len(l.Locations))
		for _, loc := range l.Locations {
			k := cellOf(loc.Point)
			if !seen[k] {
				seen[k] = true
				idx.cells[k] = append(idx.cells[k], l)
			}
		}
	}
	return idx
}

// candidates returns the licenses whose locations might lie within
// radius of center (every license in cells the search disc overlaps).
func (idx *spatialIndex) candidates(center geo.Point, radius float64) []*License {
	// Convert the radius to degree spans (latitude exact; longitude
	// widened by the cos factor at the query latitude).
	latSpan := radius / 111_000
	cosLat := math.Cos(center.Lat * math.Pi / 180)
	if cosLat < 0.1 {
		cosLat = 0.1
	}
	lonSpan := radius / (111_000 * cosLat)

	minLat := int32(math.Floor((center.Lat - latSpan) / gridCellDeg))
	maxLat := int32(math.Floor((center.Lat + latSpan) / gridCellDeg))
	minLon := int32(math.Floor((center.Lon - lonSpan) / gridCellDeg))
	maxLon := int32(math.Floor((center.Lon + lonSpan) / gridCellDeg))

	var out []*License
	dedup := make(map[*License]bool)
	for la := minLat; la <= maxLat; la++ {
		for lo := minLon; lo <= maxLon; lo++ {
			for _, l := range idx.cells[gridKey{la, lo}] {
				if !dedup[l] {
					dedup[l] = true
					out = append(out, l)
				}
			}
		}
	}
	return out
}

// WithinRadiusIndexed is WithinRadius backed by the lazy grid index
// (safe for concurrent callers). Results are identical to WithinRadius.
func (db *Database) WithinRadiusIndexed(center geo.Point, radius float64) []*License {
	db.spatialMu.Lock()
	if db.spatial == nil {
		db.spatial = buildSpatialIndex(db.licenses)
	}
	idx := db.spatial
	db.spatialMu.Unlock()
	var out []*License
	for _, l := range idx.candidates(center, radius) {
		for _, loc := range l.Locations {
			if geo.Distance(center, loc.Point) <= radius {
				out = append(out, l)
				break
			}
		}
	}
	SortLicenses(out)
	return out
}
