package uls

import (
	"testing"
)

func elTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mk := func(cs, licensee string, grant, expire, cancel string) *License {
		l := &License{
			CallSign:     cs,
			Licensee:     licensee,
			RadioService: "MG",
			Grant:        MustParseDate(grant),
		}
		if expire != "" {
			l.Expiration = MustParseDate(expire)
		}
		if cancel != "" {
			l.Cancellation = MustParseDate(cancel)
		}
		return l
	}
	for _, l := range []*License{
		mk("WAAA100", "Alpha", "01/15/2013", "01/15/2023", ""),
		mk("WAAA101", "Alpha", "06/01/2014", "06/01/2024", "03/10/2017"),
		mk("WBBB200", "Beta", "02/20/2015", "02/20/2016", ""), // expires before cancel
		mk("WBBB201", "Beta", "02/20/2015", "", "07/04/2018"),
		mk("WCCC300", "Gamma", "12/31/2019", "12/31/2029", ""),
	} {
		if err := db.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	// A license with no grant date never becomes active; neither the
	// interval index nor the event log may surface it.
	ungranted := &License{CallSign: "WZZZ999", Licensee: "Alpha", RadioService: "MG"}
	db.licenses = append(db.licenses, ungranted)
	db.byCallSign[ungranted.CallSign] = ungranted
	db.invalidate()
	return db
}

func TestEventLogOrderingAndKinds(t *testing.T) {
	db := elTestDB(t)
	log := db.EventLog()

	events := log.Events("")
	// 5 granted licenses, each with exactly one retraction (cancel or
	// expire, whichever comes first).
	if len(events) != 10 {
		t.Fatalf("event count = %d, want 10", len(events))
	}
	prev := events[0]
	for _, ev := range events[1:] {
		if eventLess(ev, prev) {
			t.Fatalf("events out of order: %v %v before %v %v", prev.Date, prev.Kind, ev.Date, ev.Kind)
		}
		prev = ev
	}
	for _, ev := range events {
		if ev.License.CallSign == "WZZZ999" {
			t.Fatal("ungranted license appeared in event log")
		}
	}
	// WAAA101 retracts by cancellation (03/10/2017 < 06/01/2024);
	// WBBB200 retracts by expiration (02/20/2016, no cancellation).
	kinds := map[string]EventKind{}
	for _, ev := range events {
		if !ev.Kind.Activates() {
			kinds[ev.License.CallSign] = ev.Kind
		}
	}
	if kinds["WAAA101"] != EventCancel {
		t.Fatalf("WAAA101 retraction kind = %v, want cancel", kinds["WAAA101"])
	}
	if kinds["WBBB200"] != EventExpire {
		t.Fatalf("WBBB200 retraction kind = %v, want expire", kinds["WBBB200"])
	}
}

// TestEventLogReplayMatchesStab is the core identity: applying events
// with date ≤ d reproduces ActiveAt(d) exactly, for every event
// boundary, the day before, and the day after.
func TestEventLogReplayMatchesStab(t *testing.T) {
	db := elTestDB(t)
	log := db.EventLog()

	var probes []Date
	for _, ev := range log.Events("") {
		probes = append(probes, ev.Date.AddDays(-1), ev.Date, ev.Date.AddDays(1))
	}
	for _, d := range probes {
		want := map[string]bool{}
		for _, l := range db.ActiveAt(d) {
			want[l.CallSign] = true
		}
		got := map[string]bool{}
		for _, ev := range log.Events("")[:log.CursorAt("", d)] {
			if ev.Kind.Activates() {
				got[ev.License.CallSign] = true
			} else {
				delete(got, ev.License.CallSign)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("at %v: replay has %d active, stab has %d", d, len(got), len(want))
		}
		for cs := range want {
			if !got[cs] {
				t.Fatalf("at %v: replay missing %s", d, cs)
			}
		}
	}
}

func TestEventLogActiveCountMatchesMap(t *testing.T) {
	db := elTestDB(t)
	log := db.EventLog()
	licensees := append(db.Licensees(), "NoSuchEntity")
	var probes []Date
	for _, ev := range log.Events("") {
		probes = append(probes, ev.Date.AddDays(-1), ev.Date, ev.Date.AddDays(1))
	}
	for _, d := range probes {
		byName := db.ActiveCountByLicensee(d)
		total := 0
		for _, name := range licensees {
			if got, want := log.ActiveCount(name, d), byName[name]; got != want {
				t.Fatalf("ActiveCount(%q, %v) = %d, want %d", name, d, got, want)
			}
			total += byName[name]
		}
		if got := log.ActiveCount("", d); got != total {
			t.Fatalf("ActiveCount(all, %v) = %d, want %d", d, got, total)
		}
	}
}

func TestEventLogAnchorDate(t *testing.T) {
	db := elTestDB(t)
	log := db.EventLog()

	// Before any event: zero anchor.
	if a := log.AnchorDate("", MustParseDate("01/01/2000")); !a.IsZero() {
		t.Fatalf("anchor before first event = %v, want zero", a)
	}
	// On and after an event date, the anchor is that event's date until
	// the next event.
	first := log.Events("")[0].Date
	if a := log.AnchorDate("", first); a != first {
		t.Fatalf("anchor at first event = %v, want %v", a, first)
	}
	if a := log.AnchorDate("", first.AddDays(1)); a != first {
		// valid only if no event falls on first+1; our fixture's events
		// are years apart.
		t.Fatalf("anchor day after first event = %v, want %v", a, first)
	}
	// Per-licensee streams anchor independently.
	if a := log.AnchorDate("Gamma", MustParseDate("01/01/2018")); !a.IsZero() {
		t.Fatalf("Gamma anchor before its grant = %v, want zero", a)
	}
}

func TestEventLogMergedEvents(t *testing.T) {
	db := elTestDB(t)
	log := db.EventLog()
	merged := log.MergedEvents([]string{"Beta", "Alpha"})
	want := len(log.Events("Alpha")) + len(log.Events("Beta"))
	if len(merged) != want {
		t.Fatalf("merged %d events, want %d", len(merged), want)
	}
	for i := 1; i < len(merged); i++ {
		if eventLess(merged[i], merged[i-1]) {
			t.Fatalf("merged stream out of order at %d", i)
		}
	}
	if got := log.MergedEvents(nil); len(got) != len(log.Events("")) {
		t.Fatalf("MergedEvents(nil) = %d events, want whole database", len(got))
	}
}

func TestEventLogInvalidatedByMutation(t *testing.T) {
	db := elTestDB(t)
	before := db.EventLog()
	l := &License{
		CallSign:     "WDDD400",
		Licensee:     "Delta",
		RadioService: "MG",
		Grant:        MustParseDate("05/05/2016"),
		Expiration:   MustParseDate("05/05/2026"),
	}
	if err := db.Add(l); err != nil {
		t.Fatal(err)
	}
	after := db.EventLog()
	if before == after {
		t.Fatal("EventLog not invalidated by Add")
	}
	if after.Len() != before.Len()+2 {
		t.Fatalf("after mutation: %d events, want %d", after.Len(), before.Len()+2)
	}
}
