package uls

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBulk asserts the bulk parser never panics on arbitrary input,
// and that anything it accepts survives a write/re-read round trip.
func FuzzReadBulk(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"HD|WQAA001|1|MG|A|06/01/2015||\nEN|WQAA001|Net|0001|x@n.example\n",
		strings.Join([]string{
			"HD|WQAA001|1|MG|A|06/01/2015||",
			"EN|WQAA001|Net One|0001|noc@netone.example",
			"LO|WQAA001|1|41-45-00.0 N|88-12-00.0 W|200.0|100.0",
			"LO|WQAA001|2|41-42-00.0 N|87-42-00.0 W|190.0|100.0",
			"PA|WQAA001|1|1|2|FXO",
			"FR|WQAA001|1|11245.0",
		}, "\n"),
		"HD|X|x|MG|A|06/01/2015||\n",
		"ZZ|WQAA001|garbage\n",
		"HD|WQAA001|1|MG|A|99/99/9999||\n",
		"LO|WQAA001|1|junk|junk|x|y\n",
		"HD|WQAA001|1|MG|A|06/01/2015||\nHD|WQAA001|1|MG|A|06/01/2015||\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadBulk(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBulk(&buf, db); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		back, err := ReadBulk(&buf)
		if err != nil {
			t.Fatalf("re-encoded output failed to parse: %v", err)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip lost licenses: %d vs %d", back.Len(), db.Len())
		}
	})
}

// FuzzReadBulkLenient asserts the fault-tolerant path never panics,
// always produces a report, and only ever loads licenses that re-parse
// cleanly under the strict reader — a salvaged database is a clean
// database. Seeds imitate the synth corruption profiles: garbled
// fields, truncation, duplicated records, reordering, and shredded
// (joined) lines.
func FuzzReadBulkLenient(f *testing.F) {
	clean := strings.Join([]string{
		"HD|WQAA001|1|MG|A|06/01/2015||",
		"EN|WQAA001|Net One|0001|noc@netone.example",
		"LO|WQAA001|1|41-45-00.0 N|88-12-00.0 W|200.0|100.0",
		"LO|WQAA001|2|41-42-00.0 N|87-42-00.0 W|190.0|100.0",
		"PA|WQAA001|1|1|2|FXO|45.0|225.0|38.0",
		"FR|WQAA001|1|11245.0",
		"",
	}, "\n")
	seeds := []string{
		"",
		clean,
		// garble: junk fields mid-record
		strings.Replace(clean, "200.0|100.0", "#?~|NaNope", 1),
		// truncate: record cut mid-field
		clean[:len(clean)/2],
		// duplicate: a record line filed twice
		clean + "EN|WQAA001|Net One|0001|noc@netone.example\n",
		// reorder: FR and records before their HD
		"FR|WQAA001|1|11245.0\nEN|WQAA001|Net|0001|x@n.example\n" + clean,
		// shred: two records joined by a lost newline
		strings.Replace(clean, "|0001|noc@netone.example\nLO|", "|0001|noc@netone.exampleLO|", 1),
		"HD|WQAA001|1|MG|A|99/99/9999||\nZZ|?|\x00\xff\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, rep, err := ReadBulkWithOptions(bytes.NewReader(data), ReadBulkOptions{Mode: Lenient})
		if rep == nil {
			t.Fatal("nil report")
		}
		if rep.BadLines > rep.RecordLines || rep.RecordLines > rep.Lines {
			t.Fatalf("impossible accounting: bad %d > records %d > lines %d",
				rep.BadLines, rep.RecordLines, rep.Lines)
		}
		if err != nil {
			return
		}
		if db == nil {
			t.Fatal("nil database with nil error")
		}
		if db.Len() != rep.LicensesLoaded {
			t.Fatalf("db has %d licenses, report says %d", db.Len(), rep.LicensesLoaded)
		}
		var buf bytes.Buffer
		if err := WriteBulk(&buf, db); err != nil {
			t.Fatalf("salvaged database failed to encode: %v", err)
		}
		if _, err := ReadBulk(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("salvaged database is not strict-clean: %v", err)
		}
	})
}

// FuzzParseDate asserts the date parser never panics and that accepted
// dates re-render to a string that parses back to the same value.
func FuzzParseDate(f *testing.F) {
	for _, s := range []string{"", "04/01/2020", "2020-04-01", "02/29/2016",
		"13/01/2020", "garbage", "00/00/0000", "12/31/9999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDate(s)
		if err != nil {
			return
		}
		back, err := ParseDate(d.String())
		if err != nil {
			t.Fatalf("rendered date %q failed to parse: %v", d.String(), err)
		}
		if back != d {
			t.Fatalf("round trip changed %v to %v", d, back)
		}
	})
}
