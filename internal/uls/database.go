package uls

import (
	"fmt"
	"sort"
	"sync"

	"hftnetview/internal/geo"
)

// Database is an in-memory license store with the query surface the
// paper's methodology needs: lookup by call sign, grouping by licensee,
// geographic search around a point, and date-scoped activity queries.
// It is the backing store for both the simulated FCC portal and the
// offline analyses.
//
// A Database is safe for concurrent readers after loading; mutation
// (Add) is not synchronized.
type Database struct {
	licenses   []*License
	byCallSign map[string]*License
	gen        int64 // bumped by Add; lets caches detect staleness

	spatialMu sync.Mutex
	spatial   *spatialIndex // lazy; guarded by spatialMu; invalidated by Add

	dateMu  sync.Mutex
	dateIdx *dateIndex // lazy; guarded by dateMu; invalidated by Add

	eventMu sync.Mutex
	events  *EventLog // lazy; guarded by eventMu; invalidated by Add
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{byCallSign: make(map[string]*License)}
}

// Add inserts a license. It rejects duplicate call signs and licenses
// that fail Validate.
func (db *Database) Add(l *License) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if _, dup := db.byCallSign[l.CallSign]; dup {
		return fmt.Errorf("uls: duplicate call sign %s", l.CallSign)
	}
	db.licenses = append(db.licenses, l)
	db.byCallSign[l.CallSign] = l
	db.invalidate()
	return nil
}

// BulkAddOptions controls AddBulk.
type BulkAddOptions struct {
	// TrustValidated skips per-license semantic validation. Reserve it
	// for loaders whose input provably round-trips an already-validated
	// database — the persistence store's warm boot, where segment
	// checksums guarantee the bytes are exactly what a validated
	// Database encoded. Call signs must still be present and duplicates
	// are still rejected.
	TrustValidated bool
}

// AddBulk inserts a batch of licenses in one step: the call-sign index
// is grown once, the derived indexes are invalidated once instead of
// per insert, and validation may be skipped for checksummed sources.
// On error the database is unchanged — a bulk insert lands whole or
// not at all.
func (db *Database) AddBulk(ls []*License, o BulkAddOptions) error {
	m := make(map[string]*License, len(db.byCallSign)+len(ls))
	for k, v := range db.byCallSign {
		m[k] = v
	}
	licenses := make([]*License, len(db.licenses), len(db.licenses)+len(ls))
	copy(licenses, db.licenses)
	for _, l := range ls {
		if !o.TrustValidated {
			if err := l.Validate(); err != nil {
				return err
			}
		} else if l.CallSign == "" {
			return fmt.Errorf("uls: license missing call sign")
		}
		if _, dup := m[l.CallSign]; dup {
			return fmt.Errorf("uls: duplicate call sign %s", l.CallSign)
		}
		m[l.CallSign] = l
		licenses = append(licenses, l)
	}
	db.licenses, db.byCallSign = licenses, m
	db.invalidate()
	return nil
}

// invalidate bumps the generation and discards the derived indexes.
// Every mutation — Add, or Validate repairing licenses in place — must
// call it so caches keyed on Generation and the lazy indexes rebuild.
func (db *Database) invalidate() {
	db.gen++
	db.spatialMu.Lock()
	db.spatial = nil // geographic index is stale now
	db.spatialMu.Unlock()
	db.dateMu.Lock()
	db.dateIdx = nil // activity index is stale now
	db.dateMu.Unlock()
	db.eventMu.Lock()
	db.events = nil // temporal event log is stale now
	db.eventMu.Unlock()
}

// Generation returns a counter that changes whenever the database is
// mutated. External caches keyed on database contents (the snapshot
// engine's memo store) compare generations to detect staleness.
func (db *Database) Generation() int64 { return db.gen }

// dateIndex returns the lazily built date-interval index.
func (db *Database) dateIndex() *dateIndex {
	db.dateMu.Lock()
	defer db.dateMu.Unlock()
	if db.dateIdx == nil {
		db.dateIdx = buildDateIndex(db.licenses)
	}
	return db.dateIdx
}

// Len returns the number of licenses in the database.
func (db *Database) Len() int { return len(db.licenses) }

// ByCallSign returns the license with the given call sign, if any.
func (db *Database) ByCallSign(cs string) (*License, bool) {
	l, ok := db.byCallSign[cs]
	return l, ok
}

// All returns the licenses sorted by call sign. The returned slice is
// fresh; the licenses it points to are shared.
func (db *Database) All() []*License {
	out := append([]*License(nil), db.licenses...)
	SortLicenses(out)
	return out
}

// Licensees returns the distinct licensee names, sorted.
func (db *Database) Licensees() []string {
	set := make(map[string]bool)
	for _, l := range db.licenses {
		set[l.Licensee] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByLicensee returns the licenses filed under the given entity name,
// sorted by call sign.
func (db *Database) ByLicensee(name string) []*License {
	var out []*License
	for _, l := range db.licenses {
		if l.Licensee == name {
			out = append(out, l)
		}
	}
	SortLicenses(out)
	return out
}

// WithinRadius returns licenses that have any location within radius
// meters of center — the portal's geographic search (§2.1). Results are
// sorted by call sign.
func (db *Database) WithinRadius(center geo.Point, radius float64) []*License {
	var out []*License
	for _, l := range db.licenses {
		for _, loc := range l.Locations {
			if geo.Distance(center, loc.Point) <= radius {
				out = append(out, l)
				break
			}
		}
	}
	SortLicenses(out)
	return out
}

// FilterService keeps licenses matching the radio service code and, when
// stationClass is non-empty, having at least one path with that station
// class — the portal's site-based search (§2.1).
func FilterService(ls []*License, service, stationClass string) []*License {
	var out []*License
	for _, l := range ls {
		if service != "" && l.RadioService != service {
			continue
		}
		if stationClass != "" {
			found := false
			for _, p := range l.Paths {
				if p.StationClass == stationClass {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, l)
	}
	return out
}

// ActiveAt returns the licenses in force on the given date, sorted by
// call sign. The query is a date-interval stabbing lookup, not a scan.
func (db *Database) ActiveAt(d Date) []*License {
	var out []*License
	db.dateIndex().all.stab(dateKey(d), func(l *License) {
		out = append(out, l)
	})
	SortLicenses(out)
	return out
}

// ActiveCountByLicensee returns, per licensee, the number of licenses in
// force on the given date — the quantity plotted in Fig 2. Licensees
// with no active licenses are absent from the map.
func (db *Database) ActiveCountByLicensee(d Date) map[string]int {
	idx := db.dateIndex()
	out := make(map[string]int, len(idx.byLicensee))
	key := dateKey(d)
	for name, set := range idx.byLicensee {
		if n := set.count(key); n > 0 {
			out[name] = n
		}
	}
	return out
}

// ActiveLinks returns every materialized link of every license in force
// on the given date for the named licensee ("" = all licensees), in
// call-sign order. The active set comes from the date-interval index.
func (db *Database) ActiveLinks(licensee string, d Date) []Link {
	var active []*License
	db.dateIndex().set(licensee).stab(dateKey(d), func(l *License) {
		active = append(active, l)
	})
	SortLicenses(active)
	var out []Link
	for _, l := range active {
		out = append(out, l.Links()...)
	}
	return out
}

// GrantsCancellationsInYear counts, for a licensee, how many licenses
// were granted and how many cancelled during the given calendar year —
// used for the §4 narrative (e.g. NLN's 55 grants in 2015, NTC's 71
// cancellations in 2017–18).
func (db *Database) GrantsCancellationsInYear(licensee string, year int) (grants, cancels int) {
	for _, l := range db.licenses {
		if l.Licensee != licensee {
			continue
		}
		if l.Grant.Year == year {
			grants++
		}
		if !l.Cancellation.IsZero() && l.Cancellation.Year == year {
			cancels++
		}
	}
	return grants, cancels
}

// Merge adds every license in other, failing on the first error.
func (db *Database) Merge(other *Database) error {
	for _, l := range other.licenses {
		if err := db.Add(l); err != nil {
			return err
		}
	}
	return nil
}
