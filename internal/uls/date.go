package uls

import (
	"fmt"
	"time"
)

// Date is a calendar date as carried in FCC license records. The zero
// Date means "no date on file" (e.g. a license that was never cancelled).
// FCC ULS renders dates as MM/DD/YYYY; that is the interchange format
// used by the bulk files and the simulated portal.
type Date struct {
	Year  int
	Month time.Month
	Day   int
}

// NewDate builds a Date from components.
func NewDate(year int, month time.Month, day int) Date {
	return Date{Year: year, Month: month, Day: day}
}

// IsZero reports whether the date is the "no date on file" marker.
func (d Date) IsZero() bool { return d == Date{} }

// Time converts the date to a time.Time at midnight UTC. The zero Date
// converts to the zero time.Time.
func (d Date) Time() time.Time {
	if d.IsZero() {
		return time.Time{}
	}
	return time.Date(d.Year, d.Month, d.Day, 0, 0, 0, 0, time.UTC)
}

// Before reports whether d is strictly before other. Zero dates compare
// as the zero time (i.e. before everything non-zero).
func (d Date) Before(other Date) bool { return d.Time().Before(other.Time()) }

// After reports whether d is strictly after other.
func (d Date) After(other Date) bool { return d.Time().After(other.Time()) }

// Equal reports whether the two dates are the same day.
func (d Date) Equal(other Date) bool { return d == other }

// AddDays returns the date n days later (n may be negative).
func (d Date) AddDays(n int) Date {
	t := d.Time().AddDate(0, 0, n)
	return DateOf(t)
}

// DateOf truncates a time.Time to its UTC calendar date.
func DateOf(t time.Time) Date {
	if t.IsZero() {
		return Date{}
	}
	t = t.UTC()
	return Date{Year: t.Year(), Month: t.Month(), Day: t.Day()}
}

// String renders the date in FCC MM/DD/YYYY form; the zero date renders
// as the empty string, matching empty fields in bulk records.
func (d Date) String() string {
	if d.IsZero() {
		return ""
	}
	return fmt.Sprintf("%02d/%02d/%04d", d.Month, d.Day, d.Year)
}

// ParseDate parses an FCC MM/DD/YYYY date. The empty string parses to the
// zero Date. It also accepts ISO yyyy-mm-dd, which the CLI tools use.
func ParseDate(s string) (Date, error) {
	if s == "" {
		return Date{}, nil
	}
	for _, layout := range []string{"01/02/2006", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			// Reject dates that normalized (e.g. 02/30/2020).
			if t.Format(layout) != s {
				return Date{}, fmt.Errorf("uls: invalid calendar date %q", s)
			}
			return DateOf(t), nil
		}
	}
	return Date{}, fmt.Errorf("uls: unparseable date %q (want MM/DD/YYYY or YYYY-MM-DD)", s)
}

// MustParseDate is ParseDate for tests and tables of constants; it panics
// on malformed input.
func MustParseDate(s string) Date {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}
