package uls

import (
	"strings"
	"testing"
	"time"

	"hftnetview/internal/geo"
)

// testLicense builds a minimal valid two-location license.
func testLicense(cs, licensee string, grant, cancel Date) *License {
	return &License{
		CallSign:     cs,
		LicenseID:    1000,
		Licensee:     licensee,
		FRN:          "0012345678",
		RadioService: ServiceMG,
		Status:       StatusActive,
		Grant:        grant,
		Cancellation: cancel,
		Locations: []Location{
			{Number: 1, Point: geo.Point{Lat: 41.76, Lon: -88.20}, GroundElevation: 200, SupportHeight: 100},
			{Number: 2, Point: geo.Point{Lat: 41.70, Lon: -87.70}, GroundElevation: 190, SupportHeight: 110},
		},
		Paths: []Path{
			{Number: 1, TXLocation: 1, RXLocation: 2, StationClass: ClassFXO,
				FrequenciesMHz: []float64{11245.0, 10995.0}},
		},
	}
}

func TestActiveAt(t *testing.T) {
	grant := NewDate(2015, time.June, 1)
	cancel := NewDate(2018, time.March, 15)
	l := testLicense("WQAA001", "Test Net", grant, cancel)

	cases := []struct {
		date string
		want bool
	}{
		{"05/31/2015", false}, // day before grant
		{"06/01/2015", true},  // grant day counts
		{"01/01/2016", true},
		{"03/14/2018", true},  // day before cancellation
		{"03/15/2018", false}, // cancellation day does not count
		{"01/01/2020", false},
	}
	for _, c := range cases {
		if got := l.ActiveAt(MustParseDate(c.date)); got != c.want {
			t.Errorf("ActiveAt(%s) = %v, want %v", c.date, got, c.want)
		}
	}
}

func TestActiveAtNoCancellation(t *testing.T) {
	l := testLicense("WQAA002", "Test Net", NewDate(2015, time.June, 1), Date{})
	if !l.ActiveAt(MustParseDate("04/01/2020")) {
		t.Error("license without cancellation should stay active")
	}
}

func TestActiveAtExpiration(t *testing.T) {
	l := testLicense("WQAA003", "Test Net", NewDate(2015, time.June, 1), Date{})
	l.Expiration = NewDate(2019, time.June, 1)
	if l.ActiveAt(MustParseDate("06/01/2019")) {
		t.Error("license should be inactive on expiration day")
	}
	if !l.ActiveAt(MustParseDate("05/31/2019")) {
		t.Error("license should be active the day before expiration")
	}
}

func TestActiveAtNeverGranted(t *testing.T) {
	l := testLicense("WQAA004", "Test Net", Date{}, Date{})
	if l.ActiveAt(MustParseDate("01/01/2020")) {
		t.Error("ungranted license should never be active")
	}
}

func TestValidateGood(t *testing.T) {
	l := testLicense("WQAA005", "Test Net", NewDate(2015, time.June, 1), Date{})
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *License {
		return testLicense("WQAA006", "Test Net", NewDate(2015, time.June, 1), Date{})
	}
	cases := []struct {
		name    string
		mutate  func(*License)
		wantSub string
	}{
		{"missing call sign", func(l *License) { l.CallSign = "" }, "call sign"},
		{"missing licensee", func(l *License) { l.Licensee = "" }, "licensee"},
		{"missing grant", func(l *License) { l.Grant = Date{} }, "grant"},
		{"cancel before grant", func(l *License) {
			l.Cancellation = NewDate(2014, time.January, 1)
		}, "precedes grant"},
		{"bad location number", func(l *License) { l.Locations[0].Number = 0 }, "location number"},
		{"duplicate location", func(l *License) { l.Locations[1].Number = 1 }, "duplicate location"},
		{"invalid coordinates", func(l *License) {
			l.Locations[0].Point = geo.Point{Lat: 95, Lon: 0}
		}, "invalid coordinates"},
		{"bad path number", func(l *License) { l.Paths[0].Number = -1 }, "path number"},
		{"missing tx", func(l *License) { l.Paths[0].TXLocation = 9 }, "missing TX"},
		{"missing rx", func(l *License) { l.Paths[0].RXLocation = 9 }, "missing RX"},
		{"self loop", func(l *License) { l.Paths[0].RXLocation = 1 }, "self loop"},
		{"no frequencies", func(l *License) { l.Paths[0].FrequenciesMHz = nil }, "no frequencies"},
		{"bad frequency", func(l *License) { l.Paths[0].FrequenciesMHz = []float64{-6000} }, "non-positive frequency"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := base()
			c.mutate(l)
			err := l.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestValidateAntennaFields(t *testing.T) {
	base := func() *License {
		return testLicense("WQAN001", "Ant Net", NewDate(2015, time.June, 1), Date{})
	}
	cases := []struct {
		name   string
		mutate func(*License)
	}{
		{"negative azimuth", func(l *License) { l.Paths[0].TXAzimuthDeg = -1 }},
		{"azimuth 360", func(l *License) { l.Paths[0].RXAzimuthDeg = 360 }},
		{"negative gain", func(l *License) { l.Paths[0].AntennaGainDBi = -3 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := base()
			c.mutate(l)
			if err := l.Validate(); err == nil {
				t.Error("Validate passed, want error")
			}
		})
	}
	good := base()
	good.Paths[0].TXAzimuthDeg = 96.5
	good.Paths[0].RXAzimuthDeg = 276.5
	good.Paths[0].AntennaGainDBi = 41.8
	if err := good.Validate(); err != nil {
		t.Errorf("valid antenna fields rejected: %v", err)
	}
}

func TestValidateDuplicatePathNumber(t *testing.T) {
	l := testLicense("WQAA007", "Test Net", NewDate(2015, time.June, 1), Date{})
	l.Paths = append(l.Paths, Path{Number: 1, TXLocation: 2, RXLocation: 1,
		StationClass: ClassFXO, FrequenciesMHz: []float64{6000}})
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate path") {
		t.Errorf("Validate = %v, want duplicate path error", err)
	}
}

func TestLinks(t *testing.T) {
	l := testLicense("WQAA008", "Test Net", NewDate(2015, time.June, 1), Date{})
	links := l.Links()
	if len(links) != 1 {
		t.Fatalf("Links = %d, want 1", len(links))
	}
	lk := links[0]
	if lk.CallSign != "WQAA008" || lk.Licensee != "Test Net" || lk.PathNumber != 1 {
		t.Errorf("link metadata wrong: %+v", lk)
	}
	if lk.TX.Number != 1 || lk.RX.Number != 2 {
		t.Errorf("link endpoints wrong: %+v", lk)
	}
	if got := lk.LengthMeters(); got < 30e3 || got > 60e3 {
		t.Errorf("link length = %.0f m, want ~42 km", got)
	}
	// Frequencies are copied, not aliased.
	lk.FrequenciesMHz[0] = 1
	if l.Paths[0].FrequenciesMHz[0] == 1 {
		t.Error("Links aliases license frequency slice")
	}
}

func TestLinksSkipsDanglingPaths(t *testing.T) {
	l := testLicense("WQAA009", "Test Net", NewDate(2015, time.June, 1), Date{})
	l.Paths = append(l.Paths, Path{Number: 2, TXLocation: 1, RXLocation: 99,
		StationClass: ClassFXO, FrequenciesMHz: []float64{6000}})
	if got := len(l.Links()); got != 1 {
		t.Errorf("Links = %d, want dangling path skipped", got)
	}
}

func TestLocationByNumber(t *testing.T) {
	l := testLicense("WQAA010", "Test Net", NewDate(2015, time.June, 1), Date{})
	if loc, ok := l.LocationByNumber(2); !ok || loc.Number != 2 {
		t.Errorf("LocationByNumber(2) = %+v, %v", loc, ok)
	}
	if _, ok := l.LocationByNumber(3); ok {
		t.Error("LocationByNumber(3) should not exist")
	}
}
