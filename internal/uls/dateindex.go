package uls

import "sort"

// Date-interval index for the activity queries (§2.3/§4). Every
// longitudinal analysis starts from "which licenses were in force on
// date D"; a license is active over the half-open interval
// [grant, min(cancellation, expiration)) and the queries are interval
// stabbing queries. The index keeps, per licensee and for the whole
// database, the licenses sorted by grant date with a segment tree of
// subtree-maximum end dates, so a stabbing query visits O(log n + k)
// licenses instead of scanning all n. Like the spatial index, it is
// built lazily on first use and invalidated by Add.

// dateKey encodes a Date for integer comparison; the encoding is
// monotone in calendar order. The zero Date encodes to 0.
func dateKey(d Date) int32 {
	return int32(d.Year)*10000 + int32(d.Month)*100 + int32(d.Day)
}

// dateKeyMax is an end key larger than any calendar date: licenses
// with no cancellation or expiration on file never stop being active.
const dateKeyMax = int32(1<<31 - 1)

// licInterval is one license's activity interval [start, end).
type licInterval struct {
	start, end int32
	lic        *License
}

// intervalSet is a static stabbing-query structure over intervals
// sorted by start date. maxEnd is a segment tree over the sorted
// slice: maxEnd[node] is the maximum interval end within the node's
// range, letting the query skip whole subtrees whose intervals have
// all ended by the probe date.
type intervalSet struct {
	iv     []licInterval
	maxEnd []int32
}

func newIntervalSet(iv []licInterval) *intervalSet {
	sort.Slice(iv, func(i, j int) bool {
		if iv[i].start != iv[j].start {
			return iv[i].start < iv[j].start
		}
		return iv[i].lic.CallSign < iv[j].lic.CallSign
	})
	s := &intervalSet{iv: iv}
	if len(iv) > 0 {
		s.maxEnd = make([]int32, 4*len(iv))
		s.build(1, 0, len(iv))
	}
	return s
}

func (s *intervalSet) build(node, lo, hi int) int32 {
	if hi-lo == 1 {
		s.maxEnd[node] = s.iv[lo].end
		return s.maxEnd[node]
	}
	mid := (lo + hi) / 2
	l := s.build(2*node, lo, mid)
	r := s.build(2*node+1, mid, hi)
	if r > l {
		l = r
	}
	s.maxEnd[node] = l
	return l
}

// stab calls visit for every license whose interval contains d, in
// start order. Pruning: a subtree is skipped when its earliest start
// is after d (starts are sorted) or when no interval in it ends
// after d (segment-tree max end).
func (s *intervalSet) stab(d int32, visit func(*License)) {
	if len(s.iv) == 0 {
		return
	}
	s.stabRange(1, 0, len(s.iv), d, visit)
}

func (s *intervalSet) stabRange(node, lo, hi int, d int32, visit func(*License)) {
	if s.iv[lo].start > d || s.maxEnd[node] <= d {
		return
	}
	if hi-lo == 1 {
		// start <= d < end held by the two prunes above.
		visit(s.iv[lo].lic)
		return
	}
	mid := (lo + hi) / 2
	s.stabRange(2*node, lo, mid, d, visit)
	s.stabRange(2*node+1, mid, hi, d, visit)
}

// count returns the number of intervals containing d without visiting.
func (s *intervalSet) count(d int32) int {
	n := 0
	s.stab(d, func(*License) { n++ })
	return n
}

// dateIndex holds the per-licensee interval sets plus one over the
// whole database.
type dateIndex struct {
	all        *intervalSet
	byLicensee map[string]*intervalSet
}

func buildDateIndex(licenses []*License) *dateIndex {
	idx := &dateIndex{byLicensee: make(map[string]*intervalSet)}
	var all []licInterval
	per := make(map[string][]licInterval)
	for _, l := range licenses {
		if l.Grant.IsZero() {
			continue // never active (ActiveAt semantics)
		}
		end := dateKeyMax
		if !l.Cancellation.IsZero() {
			end = dateKey(l.Cancellation)
		}
		if !l.Expiration.IsZero() {
			if e := dateKey(l.Expiration); e < end {
				end = e
			}
		}
		iv := licInterval{start: dateKey(l.Grant), end: end, lic: l}
		all = append(all, iv)
		per[l.Licensee] = append(per[l.Licensee], iv)
	}
	idx.all = newIntervalSet(all)
	for name, ivs := range per {
		idx.byLicensee[name] = newIntervalSet(ivs)
	}
	return idx
}

// set returns the interval set for the licensee ("" = all licensees).
func (idx *dateIndex) set(licensee string) *intervalSet {
	if licensee == "" {
		return idx.all
	}
	if s, ok := idx.byLicensee[licensee]; ok {
		return s
	}
	return &intervalSet{}
}
