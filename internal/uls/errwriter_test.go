package uls

import (
	"errors"
	"testing"
)

// failWriter fails after n bytes, exercising the writers' error paths.
type failWriter struct {
	budget int
}

var errSink = errors.New("sink full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errSink
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
		f.budget = 0
		return n, errSink
	}
	f.budget -= n
	return n, nil
}

func TestWriteBulkPropagatesWriterErrors(t *testing.T) {
	db := buildTestDB(t)
	for _, budget := range []int{0, 1, 10, 50, 200} {
		if err := WriteBulk(&failWriter{budget: budget}, db); err == nil {
			t.Errorf("budget %d: WriteBulk succeeded, want error", budget)
		}
	}
}
