package uls

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestBulkGolden pins the bulk interchange format byte-for-byte: the
// format is the repository's published data interface.
func TestBulkGolden(t *testing.T) {
	db := buildTestDB(t)
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bulk_golden.uls")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("bulk output changed; if intentional, rerun with -update.\ngot:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}
