// Package leo models low-Earth-orbit satellite relay latency for the
// paper's Fig 5 / §6 discussion: a string-of-pearls constellation along
// the great circle between two ground stations, with line-of-sight
// up/down links and inter-satellite laser links, compared against
// terrestrial microwave and fiber.
package leo

import (
	"fmt"
	"math"

	"hftnetview/internal/geo"
	"hftnetview/internal/units"
)

// Constellation describes the shell geometry relevant to one path: the
// orbital altitude and the along-track spacing of satellites. (The
// cross-track structure of a real constellation is irrelevant for a
// single great-circle path; the nearest-plane satellites dominate.)
type Constellation struct {
	// AltitudeM is the shell altitude above the surface (Starlink's
	// initial shell is ~550 km; the paper quotes shells as low as
	// 300 km).
	AltitudeM float64
	// SpacingM is the along-track distance between adjacent satellites.
	// Starlink's 22-satellites-per-plane shells space them ~2,000 km
	// apart; denser shells shrink this.
	SpacingM float64
}

// Starlink550 is the familiar 550 km shell with ~2,000 km along-track
// spacing.
func Starlink550() Constellation {
	return Constellation{AltitudeM: 550e3, SpacingM: 2000e3}
}

// Breakdown itemizes a satellite path.
type Breakdown struct {
	// UplinkM and DownlinkM are the ground-to-satellite slant ranges.
	UplinkM, DownlinkM float64
	// ISLM is the total inter-satellite distance.
	ISLM float64
	// Hops is the number of inter-satellite links used.
	Hops int
	// TotalM is the full path length.
	TotalM float64
}

// slantRange returns the line-of-sight distance from a ground point to a
// satellite at altitude alt whose ground track is groundDist away, over
// a spherical Earth of radius geo.MeanRadius.
func slantRange(groundDist, alt float64) float64 {
	R := geo.MeanRadius
	theta := groundDist / R
	rs := R + alt
	return math.Sqrt(R*R + rs*rs - 2*R*rs*math.Cos(theta))
}

// chordAtAltitude returns the straight-line distance between two
// satellites at altitude alt whose ground tracks are groundDist apart.
func chordAtAltitude(groundDist, alt float64) float64 {
	rs := geo.MeanRadius + alt
	theta := groundDist / geo.MeanRadius
	return 2 * rs * math.Sin(theta/2)
}

// PathLatency returns the one-way latency of relaying a→b through the
// constellation, assuming satellites sit along the a→b great circle with
// the worst-case phase (the first satellite half a spacing away —
// a conservative, time-averaged placement).
func (c Constellation) PathLatency(a, b geo.Point) (units.Latency, Breakdown, error) {
	if c.AltitudeM <= 0 || c.SpacingM <= 0 {
		return 0, Breakdown{}, fmt.Errorf("leo: invalid constellation %+v", c)
	}
	ground := geo.Distance(a, b)
	var bd Breakdown
	if ground <= c.SpacingM {
		// Single-satellite bent pipe over the midpoint region.
		up := slantRange(ground/2, c.AltitudeM)
		bd = Breakdown{UplinkM: up, DownlinkM: up, TotalM: 2 * up}
	} else {
		// First and last satellites sit half a spacing inside the path;
		// intermediate hops cover the rest.
		offset := c.SpacingM / 2
		bd.UplinkM = slantRange(offset, c.AltitudeM)
		bd.DownlinkM = slantRange(offset, c.AltitudeM)
		islGround := ground - 2*offset
		bd.Hops = int(math.Ceil(islGround / c.SpacingM))
		if bd.Hops < 1 {
			bd.Hops = 1
		}
		hopGround := islGround / float64(bd.Hops)
		bd.ISLM = float64(bd.Hops) * chordAtAltitude(hopGround, c.AltitudeM)
		bd.TotalM = bd.UplinkM + bd.ISLM + bd.DownlinkM
	}
	// Space and upper-atmosphere propagation is effectively at c.
	return units.CLatency(bd.TotalM), bd, nil
}

// TerrestrialMicrowave returns the one-way latency of a line-of-sight
// microwave network spanning the a→b geodesic with the given path
// stretch (1.0 = perfectly straight towers).
func TerrestrialMicrowave(a, b geo.Point, stretch float64) units.Latency {
	return units.MicrowaveLatency(geo.Distance(a, b) * stretch)
}

// Fiber returns the one-way latency of a fiber route with the given
// stretch over the geodesic (long-haul routes are typically 1.2–2×
// circuitous, and light in glass runs at 2c/3).
func Fiber(a, b geo.Point, stretch float64) units.Latency {
	return units.FiberLatency(geo.Distance(a, b) * stretch)
}

// Comparison is one row of the Fig 5 analysis.
type Comparison struct {
	Label           string
	GroundKM        float64
	MicrowaveMS     float64 // NaN when terrestrial MW is infeasible (ocean)
	FiberMS         float64
	LEOMS           float64
	LEOBreakdown    Breakdown
	MicrowaveViable bool
}

// Compare evaluates one segment under a constellation, terrestrial MW
// stretch (ignored when mwViable is false) and fiber stretch.
func Compare(label string, a, b geo.Point, c Constellation,
	mwViable bool, mwStretch, fiberStretch float64) (Comparison, error) {
	leoLat, bd, err := c.PathLatency(a, b)
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{
		Label:           label,
		GroundKM:        geo.Distance(a, b) / 1000,
		FiberMS:         Fiber(a, b, fiberStretch).Milliseconds(),
		LEOMS:           leoLat.Milliseconds(),
		LEOBreakdown:    bd,
		MicrowaveViable: mwViable,
	}
	if mwViable {
		out.MicrowaveMS = TerrestrialMicrowave(a, b, mwStretch).Milliseconds()
	} else {
		out.MicrowaveMS = math.NaN()
	}
	return out, nil
}
