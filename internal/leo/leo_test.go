package leo

import (
	"math"
	"testing"
	"testing/quick"

	"hftnetview/internal/geo"
	"hftnetview/internal/sites"
)

var (
	frankfurt  = geo.Point{Lat: 50.1109, Lon: 8.6821}
	washington = geo.Point{Lat: 38.9072, Lon: -77.0369}
	tokyo      = geo.Point{Lat: 35.6762, Lon: 139.6503}
	newYork    = geo.Point{Lat: 40.7128, Lon: -74.0060}
)

func TestSlantRange(t *testing.T) {
	// Satellite directly overhead: slant = altitude.
	if got := slantRange(0, 550e3); math.Abs(got-550e3) > 1 {
		t.Errorf("overhead slant = %v, want 550 km", got)
	}
	// Slant grows with ground offset.
	prev := 0.0
	for _, g := range []float64{0, 100e3, 500e3, 1000e3} {
		s := slantRange(g, 550e3)
		if s < prev {
			t.Errorf("slant not monotone at %v", g)
		}
		prev = s
	}
	// 750 km offset at 550 km altitude ≈ √(550²+750²) ≈ 931 km
	// (flat-earth bound; sphere adds a little).
	if s := slantRange(750e3, 550e3); s < 930e3 || s > 1000e3 {
		t.Errorf("slant(750, 550) = %v km", s/1000)
	}
}

func TestChordAtAltitude(t *testing.T) {
	if got := chordAtAltitude(0, 550e3); got != 0 {
		t.Errorf("zero-ground chord = %v", got)
	}
	// A chord is shorter than the arc at altitude but longer than the
	// ground distance for small separations... actually the chord at
	// altitude exceeds the ground arc by roughly the altitude ratio.
	g := 2000e3
	c := chordAtAltitude(g, 550e3)
	if c < g {
		t.Errorf("chord %v below ground distance %v", c, g)
	}
	arcAtAlt := g * (geo.MeanRadius + 550e3) / geo.MeanRadius
	if c > arcAtAlt {
		t.Errorf("chord %v exceeds arc at altitude %v", c, arcAtAlt)
	}
}

func TestFig5MicrowaveBeatsLEOOnCorridor(t *testing.T) {
	// Fig 5: "the overhead of going up and down even a few hundred
	// kilometers ... will still mean that MW networks provide lower
	// latency" on Chicago–NJ.
	cme, ny4 := sites.CME.Location, sites.NY4.Location
	for _, alt := range []float64{300e3, 550e3, 1100e3} {
		c := Constellation{AltitudeM: alt, SpacingM: 2000e3}
		leoLat, _, err := c.PathLatency(cme, ny4)
		if err != nil {
			t.Fatal(err)
		}
		mw := TerrestrialMicrowave(cme, ny4, 1.005)
		if leoLat <= mw {
			t.Errorf("alt %v km: LEO %v beats MW %v on the corridor",
				alt/1000, leoLat, mw)
		}
	}
}

func TestFig5LEOBeatsFiberTransatlantic(t *testing.T) {
	// §6: "for some HFT-relevant segments like Frankfurt–Washington DC,
	// LEO constellations may offer superior latencies."
	c := Starlink550()
	leoLat, bd, err := c.PathLatency(frankfurt, washington)
	if err != nil {
		t.Fatal(err)
	}
	fiber := Fiber(frankfurt, washington, 1.4) // transatlantic cable stretch
	if leoLat >= fiber {
		t.Errorf("LEO %v does not beat fiber %v on FRA-IAD", leoLat, fiber)
	}
	if bd.Hops < 2 {
		t.Errorf("transatlantic path used %d ISL hops, want several", bd.Hops)
	}
	// Sanity: LEO one-way FRA-IAD in the 22-32 ms range.
	if ms := leoLat.Milliseconds(); ms < 20 || ms > 35 {
		t.Errorf("LEO FRA-IAD = %v ms, want 20-35", ms)
	}
}

func TestLEOLatencyIncreasesWithAltitude(t *testing.T) {
	prev := 0.0
	for _, alt := range []float64{300e3, 550e3, 800e3, 1100e3} {
		c := Constellation{AltitudeM: alt, SpacingM: 2000e3}
		l, _, err := c.PathLatency(tokyo, newYork)
		if err != nil {
			t.Fatal(err)
		}
		if l.Milliseconds() <= prev {
			t.Errorf("latency not increasing at alt %v", alt)
		}
		prev = l.Milliseconds()
	}
}

func TestSingleSatelliteBentPipe(t *testing.T) {
	// Endpoints closer than one spacing use a single bent pipe.
	a := geo.Point{Lat: 41.76, Lon: -88.20}
	b := geo.Point{Lat: 41.90, Lon: -87.60} // ~52 km
	c := Starlink550()
	l, bd, err := c.PathLatency(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Hops != 0 || bd.ISLM != 0 {
		t.Errorf("short path used ISLs: %+v", bd)
	}
	// Up+down ≥ 2× altitude.
	if bd.TotalM < 2*c.AltitudeM {
		t.Errorf("bent pipe total %v below 2×altitude", bd.TotalM)
	}
	if l.Milliseconds() < 3.6 { // 2×550 km at c ≈ 3.67 ms
		t.Errorf("bent pipe latency %v suspiciously low", l)
	}
}

func TestPathLatencyValidation(t *testing.T) {
	bad := []Constellation{{}, {AltitudeM: 550e3}, {SpacingM: 1000e3},
		{AltitudeM: -1, SpacingM: 1000e3}}
	for _, c := range bad {
		if _, _, err := c.PathLatency(frankfurt, washington); err == nil {
			t.Errorf("constellation %+v accepted", c)
		}
	}
}

func TestBreakdownConsistency(t *testing.T) {
	f := func(altSeed, spacingSeed uint16) bool {
		c := Constellation{
			AltitudeM: 300e3 + float64(altSeed%800)*1e3,
			SpacingM:  500e3 + float64(spacingSeed%3000)*1e3,
		}
		_, bd, err := c.PathLatency(tokyo, newYork)
		if err != nil {
			return false
		}
		sum := bd.UplinkM + bd.ISLM + bd.DownlinkM
		return math.Abs(sum-bd.TotalM) < 1 && bd.TotalM > geo.Distance(tokyo, newYork)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	cmp, err := Compare("CME-NY4", sites.CME.Location, sites.NY4.Location,
		Starlink550(), true, 1.005, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.MicrowaveViable || math.IsNaN(cmp.MicrowaveMS) {
		t.Error("corridor MW should be viable")
	}
	if !(cmp.MicrowaveMS < cmp.LEOMS && cmp.MicrowaveMS < cmp.FiberMS) {
		t.Errorf("corridor: MW %.3f should beat LEO %.3f and fiber %.3f",
			cmp.MicrowaveMS, cmp.LEOMS, cmp.FiberMS)
	}
	ocean, err := Compare("FRA-IAD", frankfurt, washington,
		Starlink550(), false, 0, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ocean.MicrowaveMS) {
		t.Error("oceanic MW should be NaN")
	}
	if ocean.LEOMS >= ocean.FiberMS {
		t.Errorf("FRA-IAD: LEO %.2f should beat fiber %.2f", ocean.LEOMS, ocean.FiberMS)
	}
}
