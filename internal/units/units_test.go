package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedOrdering(t *testing.T) {
	if !(FiberSpeed < MicrowaveSpeed && MicrowaveSpeed < C) {
		t.Fatalf("want fiber < microwave < c, got %v, %v, %v",
			FiberSpeed, MicrowaveSpeed, C)
	}
	// Fiber is roughly 2c/3.
	if r := FiberSpeed / C; math.Abs(r-2.0/3.0) > 0.01 {
		t.Errorf("fiber speed ratio = %v, want ≈2/3", r)
	}
	// Microwave is within 0.1% of c.
	if r := MicrowaveSpeed / C; r < 0.999 {
		t.Errorf("microwave speed ratio = %v, want ≈1", r)
	}
}

func TestCorridorCLatency(t *testing.T) {
	// 1186 km at c is the paper's 3.955-3.956 ms bound for CME-NY4 (§4).
	l := CLatency(1186e3)
	if ms := l.Milliseconds(); math.Abs(ms-3.956) > 0.001 {
		t.Errorf("c-latency over 1186 km = %v ms, want ≈3.956", ms)
	}
}

func TestMicrowaveVsFiberAdvantage(t *testing.T) {
	// Over the corridor, fiber at the same length is ~50% slower.
	mw := MicrowaveLatency(1186e3)
	fb := FiberLatency(1186e3)
	if ratio := fb.Seconds() / mw.Seconds(); math.Abs(ratio-1.4996) > 0.01 {
		t.Errorf("fiber/mw latency ratio = %v, want ≈1.5", ratio)
	}
}

func TestLatencyConversions(t *testing.T) {
	l := Latency(0.00396171)
	if got := l.Milliseconds(); math.Abs(got-3.96171) > 1e-9 {
		t.Errorf("Milliseconds = %v", got)
	}
	if got := l.Microseconds(); math.Abs(got-3961.71) > 1e-6 {
		t.Errorf("Microseconds = %v", got)
	}
	if got := l.Seconds(); got != 0.00396171 {
		t.Errorf("Seconds = %v", got)
	}
	if s := l.String(); s != "3.96171 ms" {
		t.Errorf("String = %q", s)
	}
	if !strings.HasSuffix(l.String(), " ms") {
		t.Errorf("String missing unit: %q", l.String())
	}
}

func TestSubMatchesPaperGaps(t *testing.T) {
	nln := Latency(0.00396171)
	pb := Latency(0.00396209)
	gap := pb.Sub(nln)
	// Paper: NLN leads PB by ~0.4 µs on CME-NY4.
	if got := gap.Microseconds(); math.Abs(got-0.38) > 0.01 {
		t.Errorf("NLN-PB gap = %v µs, want ≈0.38", got)
	}
}

func TestLatencyMonotoneInDistance(t *testing.T) {
	f := func(a, b float64) bool {
		da, db := math.Abs(a), math.Abs(b)
		if math.IsNaN(da) || math.IsInf(da, 0) || math.IsNaN(db) || math.IsInf(db, 0) {
			return true
		}
		if da > db {
			da, db = db, da
		}
		return MicrowaveLatency(da) <= MicrowaveLatency(db) &&
			FiberLatency(da) <= FiberLatency(db) &&
			CLatency(da) <= CLatency(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLatencyAdditivity(t *testing.T) {
	// Latency of a concatenated path is the sum of segment latencies.
	f := func(a, b float64) bool {
		da, db := math.Mod(math.Abs(a), 1e7), math.Mod(math.Abs(b), 1e7)
		if math.IsNaN(da) || math.IsNaN(db) {
			return true
		}
		sum := MicrowaveLatency(da) + MicrowaveLatency(db)
		whole := MicrowaveLatency(da + db)
		return math.Abs(float64(sum-whole)) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStretch(t *testing.T) {
	base := CLatency(1186e3)
	l := Latency(base.Seconds() * 1.05)
	if s := l.Stretch(base); math.Abs(s-1.05) > 1e-12 {
		t.Errorf("Stretch = %v, want 1.05", s)
	}
}
