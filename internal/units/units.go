// Package units implements the paper's propagation latency model (§2.3):
// microwave segments traverse at (almost) the speed of light in air, while
// the short fiber tails connecting the last towers to the data centers run
// at roughly 2c/3. It also provides the formatting helpers used when
// reporting the sub-microsecond differences the paper studies.
package units

import "fmt"

const (
	// C is the speed of light in vacuum, m/s.
	C = 299792458.0
	// AirRefractiveIndex is the mean refractive index of the troposphere
	// at microwave frequencies; radio paths run at C/AirRefractiveIndex,
	// which is what the paper means by "(almost) c".
	AirRefractiveIndex = 1.0003
	// FiberRefractiveIndex models standard single-mode fiber: light in
	// fiber travels at roughly 2c/3.
	FiberRefractiveIndex = 1.5
)

// MicrowaveSpeed is the propagation speed over line-of-sight radio links,
// in m/s.
const MicrowaveSpeed = C / AirRefractiveIndex

// FiberSpeed is the propagation speed in fiber, in m/s (≈ 2c/3).
const FiberSpeed = C / FiberRefractiveIndex

// Latency is a one-way propagation delay in seconds. A dedicated type
// keeps milliseconds/microseconds conversions explicit at call sites,
// which matters in a domain where the interesting differences are 4e-10
// of a second.
type Latency float64

// MicrowaveLatency returns the latency of dist meters of line-of-sight
// radio path.
func MicrowaveLatency(dist float64) Latency { return Latency(dist / MicrowaveSpeed) }

// FiberLatency returns the latency of dist meters of fiber.
func FiberLatency(dist float64) Latency { return Latency(dist / FiberSpeed) }

// CLatency returns the latency of dist meters at exactly c — the
// unattainable lower bound the paper compares against (e.g. the "c-speed
// latency along the geodesic").
func CLatency(dist float64) Latency { return Latency(dist / C) }

// Milliseconds returns the latency in milliseconds.
func (l Latency) Milliseconds() float64 { return float64(l) * 1e3 }

// Microseconds returns the latency in microseconds.
func (l Latency) Microseconds() float64 { return float64(l) * 1e6 }

// Seconds returns the latency as a plain float64 in seconds.
func (l Latency) Seconds() float64 { return float64(l) }

// String renders the latency in the 5-decimal millisecond format used by
// the paper's tables (e.g. "3.96171 ms").
func (l Latency) String() string {
	return fmt.Sprintf("%.5f ms", l.Milliseconds())
}

// Sub returns l - other; convenient for the microsecond gaps in §3.
func (l Latency) Sub(other Latency) Latency { return l - other }

// Stretch returns l/base, the paper's path-stretch style measure; base
// must be non-zero.
func (l Latency) Stretch(base Latency) float64 { return float64(l) / float64(base) }
