// Package hftnetview reproduces "A Bird's Eye View of the World's
// Fastest Networks" (Bhattacherjee et al., ACM IMC 2020): systematic
// reconstruction of the Chicago–New Jersey high-frequency-trading
// microwave networks from FCC-style license filings, and the paper's
// analyses — end-to-end latency rankings, longitudinal evolution,
// alternate path availability, link-length and operating-frequency
// distributions, weather resilience, and the LEO satellite comparison.
//
// This package is the facade over the implementation packages: it
// exposes the corpus, reconstruction, and analysis workflow that the
// examples, tools, and benchmarks build on.
//
// A typical session runs everything through one snapshot engine, so
// reconstructions repeated across analyses are built once and served
// from its memo store thereafter:
//
//	db, _ := hftnetview.GenerateCorpus()
//	eng := hftnetview.NewEngine(db)
//	rows, _ := eng.ConnectedNetworks(hftnetview.Snapshot(),
//		hftnetview.PathNY4(), hftnetview.DefaultOptions())
//	for _, r := range rows {
//		fmt.Printf("%-24s %s\n", r.Licensee, r.Latency)
//	}
//
// The one-shot functions (ConnectedNetworks, RankNetworks, Evolution)
// remain for single-analysis use; they reconstruct uncached.
package hftnetview

import (
	"io"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/engine"
	"hftnetview/internal/serve"
	"hftnetview/internal/sites"
	"hftnetview/internal/store"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
	"hftnetview/internal/units"
)

// Re-exported domain types. The aliases make the facade's functions
// interoperate directly with the implementation packages.
type (
	// Database is an in-memory FCC license store.
	Database = uls.Database
	// License is one ULS license filing.
	License = uls.License
	// Date is a calendar date as used in license lifecycles.
	Date = uls.Date
	// Network is one licensee's reconstructed network as of a date.
	Network = core.Network
	// Route is an end-to-end lowest-latency path through a network.
	Route = core.Route
	// NetworkSummary is one row of a connected-networks table.
	NetworkSummary = core.NetworkSummary
	// PathRanking is a corridor path with its fastest networks.
	PathRanking = core.PathRanking
	// EvolutionPoint is one longitudinal sample of a network.
	EvolutionPoint = core.EvolutionPoint
	// Options tunes reconstruction.
	Options = core.Options
	// DataCenter is a corridor anchor facility.
	DataCenter = sites.DataCenter
	// Path is an ordered data-center pair.
	Path = sites.Path
	// Latency is a one-way propagation delay in seconds.
	Latency = units.Latency
	// Engine is the shared, concurrent, memoized snapshot layer: it
	// reconstructs each distinct (licensee set, date, data-center set,
	// options) snapshot at most once per database generation and serves
	// deep clones from its memo store. Create one with NewEngine.
	Engine = engine.Engine
	// EngineStats are the engine's hit/miss/coalesce/rebuild counters.
	EngineStats = engine.Stats
	// SnapshotRequest identifies one snapshot an Engine can resolve.
	SnapshotRequest = core.SnapshotRequest
	// SnapshotProvider is the interface between analyses and snapshot
	// sources; both an Engine and the uncached direct provider satisfy it.
	SnapshotProvider = core.SnapshotProvider
	// ParseMode selects how bulk ingestion reacts to malformed records.
	ParseMode = uls.ParseMode
	// ReadBulkOptions configures fault-tolerant bulk ingestion.
	ReadBulkOptions = uls.ReadBulkOptions
	// IngestReport is the deterministic account of a fault-tolerant
	// ingestion run: error counts by class and record type, quarantined
	// call signs, and the first individual record errors.
	IngestReport = uls.IngestReport
	// RecordError is one classified record failure.
	RecordError = uls.RecordError
	// ErrorClass is the coarse taxonomy of record failures.
	ErrorClass = uls.ErrorClass
	// Bounds is a geographic bounding box for coordinate validation.
	Bounds = uls.Bounds
	// ValidateOptions configures the cross-record integrity pass.
	ValidateOptions = uls.ValidateOptions
	// ValidationReport is the outcome of Validate.
	ValidationReport = uls.ValidationReport
	// Server is the resilient always-on query service over the snapshot
	// engine: load shedding, circuit breaking, per-request deadlines,
	// and hot corpus reload. Create one with NewServer and serve its
	// Handler(); cmd/hftserve is the packaged binary.
	Server = serve.Server
	// ServeConfig tunes the query service's resilience envelope.
	ServeConfig = serve.Config
	// ReloadOptions governs hot corpus reload ingestion.
	ReloadOptions = serve.ReloadOptions
	// Store is the crash-safe generation store for parsed corpora:
	// checksummed segment writes published by atomic manifest rename,
	// with recovery that falls back to the last fully verified
	// generation. Create one with OpenStore; cmd/hftstore is the
	// inspection/maintenance binary.
	Store = store.Store
	// GenInfo describes one committed store generation.
	GenInfo = store.GenInfo
	// RecoveryReport accounts for what store recovery scanned, served,
	// and had to discard.
	RecoveryReport = store.RecoveryReport
	// FsckReport is the outcome of a deep store verification.
	FsckReport = store.FsckReport
)

// Bulk ingestion parse modes.
const (
	// Strict aborts on the first malformed record.
	Strict = uls.Strict
	// Lenient skips malformed records and salvages the rest.
	Lenient = uls.Lenient
	// DropLicense quarantines every license with a record error.
	DropLicense = uls.DropLicense
)

// NewEngine returns a snapshot engine over db. Share one engine across
// all analyses of a database: concurrent requests for the same snapshot
// coalesce onto a single reconstruction, and repeats are cache hits.
func NewEngine(db *Database) *Engine { return engine.New(db) }

// NewServer returns the resilient query service serving db under cfg
// (zero value = production defaults). The corpus is installed as the
// first generation; swap in replacements with Server.SetCorpus or
// Server.LoadCorpusFile without dropping in-flight requests.
func NewServer(db *Database, cfg ServeConfig) *Server {
	s := serve.New(cfg)
	s.SetCorpus(db, "facade")
	return s
}

// OpenStore opens (creating if necessary) a crash-safe corpus store in
// dir. Save a parsed corpus as a verified generation, Load the newest
// one back after a restart, and let Server.AttachStore persist every
// published corpus automatically.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Corridor anchors (§2.2).
var (
	CME    = sites.CME
	NY4    = sites.NY4
	NYSE   = sites.NYSE
	NASDAQ = sites.NASDAQ
)

// PathNY4 returns the paper's headline path, CME–Equinix NY4.
func PathNY4() Path { return Path{From: CME, To: NY4} }

// CorridorPaths returns the three paths of Table 2.
func CorridorPaths() []Path { return sites.CorridorPaths() }

// Snapshot returns the paper's analysis date, 1 April 2020.
func Snapshot() Date { return uls.NewDate(2020, time.April, 1) }

// DefaultOptions returns the paper's reconstruction parameters: towers
// merged at ~11 m, ≤50 km fiber tails with one attachment per data
// center, and the 5% alternate-path stretch bound.
func DefaultOptions() Options { return core.DefaultOptions() }

// GenerateCorpus builds the deterministic synthetic corridor license
// database that substitutes for the live FCC corpus (see DESIGN.md):
// the nine connected 2020 networks, National Tower Company's full arc,
// and the non-HFT licensees of the §2.2 discovery funnel.
func GenerateCorpus() (*Database, error) { return synth.Generate() }

// ReadBulk parses a pipe-delimited ULS bulk stream into a database.
func ReadBulk(r io.Reader) (*Database, error) { return uls.ReadBulk(r) }

// ReadBulkWithOptions parses a bulk stream under a fault-tolerance
// policy: Strict (abort on the first malformed record), Lenient (skip
// malformed records and salvage the rest of each license), or
// DropLicense (quarantine whole offending licenses). The IngestReport
// is never nil and is deterministic for identical input and options.
func ReadBulkWithOptions(r io.Reader, opts ReadBulkOptions) (*Database, *IngestReport, error) {
	return uls.ReadBulkWithOptions(r, opts)
}

// Validate runs the cross-record integrity pass over a database —
// dangling location references, frequency-less paths, out-of-bounds
// coordinates, lifecycle-date inversions — optionally repairing it in
// place by dropping only the inconsistent sub-records.
func Validate(db *Database, opts ValidateOptions) *ValidationReport {
	return uls.Validate(db, opts)
}

// CorridorBounds returns the Chicago–New Jersey corridor bounding box
// (the four data centers padded by 2°), for bounds-checked validation.
func CorridorBounds() Bounds { return synth.CorridorBounds() }

// WriteBulk writes a database in the ULS bulk interchange format.
func WriteBulk(w io.Writer, db *Database) error { return uls.WriteBulk(w, db) }

// ParseDate parses MM/DD/YYYY (FCC style) or YYYY-MM-DD dates.
func ParseDate(s string) (Date, error) { return uls.ParseDate(s) }

// Reconstruct rebuilds one licensee's network as of a date, attaching
// fiber tails to the given data centers (§2.3).
func Reconstruct(db *Database, licensee string, date Date, dcs []DataCenter, opts Options) (*Network, error) {
	return core.Reconstruct(db, licensee, date, dcs, opts)
}

// ConnectedNetworks reproduces a Table 1 row set: every licensee with an
// end-to-end route on the path at the date, ordered by latency.
func ConnectedNetworks(db *Database, date Date, path Path, opts Options) ([]NetworkSummary, error) {
	return core.ConnectedNetworks(db, date, path, opts)
}

// RankNetworks reproduces Table 2: the fastest networks per path.
func RankNetworks(db *Database, date Date, paths []Path, topN int, opts Options) ([]PathRanking, error) {
	return core.RankNetworks(db, date, paths, topN, opts)
}

// Evolution reproduces the Figs 1–2 trajectories for one licensee.
func Evolution(db *Database, licensee string, path Path, dates []Date, opts Options) ([]EvolutionPoint, error) {
	return core.Evolution(db, licensee, path, dates, opts)
}

// PaperSampleDates returns January-1 samples (April 1 for 2020), as the
// paper's longitudinal figures use.
func PaperSampleDates(firstYear, lastYear int) []Date {
	return core.PaperSampleDates(firstYear, lastYear)
}
