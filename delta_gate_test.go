package hftnetview

import (
	"reflect"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/report"
)

// TestDeltaSweepBudget is the delta path's performance gate (E22): a
// daily-grid evolution sweep through the engine's event-log replay must
// beat the legacy rebuild-per-date path by at least 10x, and produce
// identical points. The gate is a same-process ratio, so it holds on
// any machine; the absolute numbers live in BENCH_*.json. A dense grid
// is exactly the delta path's home turf — thousands of dates collapse
// onto the few dozen anchors where the licensee's license set actually
// changed — so a failure here means the anchor re-keying or the linear
// sweep regressed structurally, not that the runner was slow.
func TestDeltaSweepBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate skipped in -short mode")
	}
	db, err := GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	dates, err := core.GridDates(2016, 2020, "daily")
	if err != nil {
		t.Fatal(err)
	}
	licensee := report.Fig1Networks[0]
	path := PathNY4()
	opts := DefaultOptions()

	// Legacy oracle: one full stab-query reconstruction per date.
	direct := core.DirectProvider(db)
	startFull := time.Now()
	want, err := core.EvolutionVia(direct, licensee, path, dates, opts)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(startFull)

	// Delta path: a cold engine sweeping the same grid linearly.
	eng := NewEngine(db)
	startDelta := time.Now()
	got, err := eng.Evolution(licensee, path, dates, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta := time.Since(startDelta)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta sweep diverges from the rebuild-per-date oracle over %d dates", len(dates))
	}
	st := eng.Stats()
	if st.Rebuilds >= int64(len(dates)) {
		t.Fatalf("sweep did %d rebuilds over %d dates: anchor grouping is not collapsing the grid", st.Rebuilds, len(dates))
	}
	if delta*10 > full {
		t.Fatalf("delta sweep %v is not 10x faster than the full-rebuild path %v (%d dates, %d rebuilds)",
			delta, full, len(dates), st.Rebuilds)
	}
	t.Logf("daily sweep %d dates: full rebuild %v, delta %v (%.0fx, %d rebuilds, %d events replayed)",
		len(dates), full, delta, float64(full)/float64(delta), st.Rebuilds, st.EventsReplayed)
}
