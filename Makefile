# Development targets. `make ci` is what a checkin must pass: vet, the
# full test suite under the race detector (the scrape client, portal,
# snapshot engine, and query service are exercised concurrently, so
# -race is load-bearing here), the query-service signal soak, and the
# engine benchmarks in short mode.

GO ?= go

.PHONY: all build test short race vet fmt-check soak serve-soak store-crash fleet-soak membership-soak heal-soak watch-soak ship-soak cover bench bench-short bench-gate fuzz-short ci

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package: unit tests
# that only pass because an earlier test warmed shared state fail loud
# instead of landing.
test:
	$(GO) test -shuffle=on ./...

# Fast inner-loop run: skips the soak tests and the full funnel scrape.
short:
	$(GO) test -short -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The §2.2 soak suite alone: full funnel against a ~20%-fault portal,
# plus interrupt/resume through the checkpoint journal.
soak:
	$(GO) test -race -run 'TestSoak' -v ./internal/scrape/

# Query-service soak: concurrent clients saturate the admission limit
# while the corpus file is corrupted + SIGHUP'd (reload refused, old
# generation keeps serving), repaired + SIGHUP'd (atomic swap), then
# SIGTERM'd — asserting zero dropped in-flight requests throughout.
serve-soak:
	$(GO) test -race -run 'TestServeSoak' -v ./internal/serve/

# Crash-consistency loop for the corpus store, under the race
# detector: every failpoint (fsync, pre-manifest, mid-rename, post-
# publish bit flips) across seeded kill-points, asserting recovery
# always serves exactly generation N or N−1 with verified checksums —
# never a hybrid, never silent corruption.
store-crash:
	$(GO) test -race -run 'TestCrashConsistency' -v ./internal/store/

# Replicated-fleet chaos soak (E21), under the race detector: three
# replicas pulling generations from a publishing primary behind the
# failover front tier, while a seeded controller kills/restarts
# replicas and every replica's wire corrupts segment downloads —
# asserting zero wrong-generation responses, an error surface of
# exactly {200, 503 + Retry-After}, and bounded staleness.
fleet-soak:
	$(GO) test -race -run 'TestFleetChaosSoak' -v ./internal/fleet/

# Self-healing membership chaos soak (E23), under the race detector: a
# fleet assembled entirely from self-registering (lease-holding)
# replicas, while a seeded multi-fault campaign composes kills,
# front/replica/primary partitions, a full primary outage, slow and
# hung replicas, clock skew on lease timestamps, silent heartbeat
# stalls, and corruption bursts — asserting the E21 response
# invariants plus ring re-convergence within one lease TTL of every
# heal and lease-lapse eviction of silently dead replicas.
membership-soak:
	$(GO) test -race -run 'TestMembershipChaosSoak' -v ./internal/fleet/

# Self-healing data-plane chaos soak (E24), under the race detector: a
# promote-enabled front over four equivalent lease-holding replicas
# (no fixed primary), while a seeded campaign composes permanent
# source kills, on-disk bit-flips under the scrubbers, partitions, and
# corruption bursts under saturating audited load — asserting a new
# source is fenced in within one promotion budget, every bit-flip is
# repaired in place from a peer without a restart, dead branches are
# quarantined (never blended), epochs never regress, and the client
# error surface stays exactly {200, 503 + Retry-After}.
heal-soak:
	$(GO) test -race -run 'TestHealSoak' -v ./internal/fleet/

# Torn-transfer replication soak (E25), under the race detector: a
# replica converges on a primary's generations through seeded
# mid-stream link cuts, corruption injected into resumed ranges,
# kill/restart between segments, and a throttled link — asserting
# byte-identical installs with monotone per-pull progress, zero
# re-downloads of verified segments (a recorder transport proves it),
# zero wire bytes for segments shared between generations N and N+1,
# and no staging debris after the drain.
ship-soak:
	$(GO) test -race -run 'TestShipSoak' -v ./internal/fleet/

# Streaming-replay soak, under the race detector: fast, slow
# (backpressured), and mid-stream-disconnecting /v1/watch clients while
# the corpus hot-reloads underneath them — asserting gap-free monotone
# frame sequences on every observed stream prefix and zero leaked
# goroutines after the wind-down.
watch-soak:
	$(GO) test -race -run 'TestWatchSoak' -v ./internal/serve/

# Coverage gate on the two subsystems whose failure modes are silent
# corruption and data loss: the generation store and the fleet layer.
# Floors sit a few points under measured coverage (~88% fleet, ~78%
# store) so a tested-path regression fails loud without the gate
# flaking on timing-dependent branches.
cover:
	@set -e; \
	check() { \
		$(GO) test -coverprofile="cover-$$2.out" "$$1"; \
		pct="$$($(GO) tool cover -func="cover-$$2.out" | awk '/^total:/ { sub(/%/,"",$$3); print $$3 }')"; \
		echo "$$1 coverage: $$pct% (floor $$3%)"; \
		awk -v p="$$pct" -v f="$$3" 'BEGIN { exit !(p+0 >= f+0) }' || { \
			echo "coverage regression: $$1 at $$pct% is below the $$3% floor"; exit 1; }; \
	}; \
	check ./internal/fleet/ fleet 85.0; \
	check ./internal/store/ store 75.0

# Delta-sweep perf gate (E22): the engine's event-log replay must keep
# a daily-grid evolution sweep >= 10x faster than the legacy
# rebuild-per-date path, with identical points. Same-process ratio, so
# it holds on any runner; absolute numbers are recorded in
# BENCH_*.json.
bench-gate:
	$(GO) test -run 'TestDeltaSweepBudget' -v .

# Short fuzz pass over the bulk parsers. The lenient reader must never
# panic, must always produce a report, and must only load licenses the
# strict reader would re-accept; the strict reader must round-trip
# whatever it takes. Cheap enough for ci.
fuzz-short:
	$(GO) test ./internal/uls -run '^$$' -fuzz 'FuzzReadBulkLenient' -fuzztime 10s
	$(GO) test ./internal/uls -run '^$$' -fuzz 'FuzzReadBulk$$' -fuzztime 5s

# Full benchmark suite (E1–E17, ablations, engine, serving middleware,
# full-pull vs delta-pull bytes-on-wire), machine-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . ./internal/serve/ ./internal/fleet/

# Engine benchmarks only, one iteration each under the race detector:
# a smoke test that the memoized snapshot path stays correct and
# race-free, cheap enough for ci.
bench-short:
	$(GO) test -race -run '^$$' -bench 'BenchmarkEngine' -benchtime 1x .

ci: fmt-check vet build race serve-soak store-crash fleet-soak membership-soak heal-soak watch-soak ship-soak cover bench-gate bench-short fuzz-short
