# Development targets. `make ci` is what a checkin must pass: vet plus
# the full test suite under the race detector (the scrape client and
# portal are exercised concurrently, so -race is load-bearing here).

GO ?= go

.PHONY: all build test short race vet soak ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast inner-loop run: skips the soak tests and the full funnel scrape.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The §2.2 soak suite alone: full funnel against a ~20%-fault portal,
# plus interrupt/resume through the checkpoint journal.
soak:
	$(GO) test -race -run 'TestSoak' -v ./internal/scrape/

ci: vet build race
