// Scrapeloop: the paper's full §2 methodology over real HTTP — serve
// the corpus from an in-process FCC-style portal, scrape it back with
// the §2.2 pipeline, and verify the reconstruction from the scraped
// copy matches the ground truth to the microsecond.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"hftnetview"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
	"hftnetview/internal/ulsserver"
)

func main() {
	truth, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}

	// Serve the portal on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: ulsserver.New(truth)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("portal serving %d licenses at %s\n\n", truth.Len(), base)

	// Run the §2.2 pipeline against it.
	c := scrape.NewClient(base)
	start := time.Now()
	scraped, funnel, err := scrape.Run(context.Background(), c,
		scrape.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.ScrapeFunnelTable(funnel.GeographicMatches,
		funnel.Candidates, funnel.Shortlisted, funnel.LicensesScraped,
		nil).String())
	fmt.Printf("scraped in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The decisive check: rankings computed from the scraped corpus
	// must equal rankings from ground truth.
	opts := hftnetview.DefaultOptions()
	date := hftnetview.Snapshot()
	fromTruth, err := hftnetview.ConnectedNetworks(truth, date, hftnetview.PathNY4(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fromScrape, err := hftnetview.ConnectedNetworks(scraped, date, hftnetview.PathNY4(), opts)
	if err != nil {
		log.Fatal(err)
	}
	// Portal coordinates carry 0.1" (~3 m) DMS resolution, so scraped
	// latencies may differ from ground truth by a few nanoseconds.
	const dmsToleranceUS = 0.05
	fmt.Println("rank  ground truth              scraped corpus")
	for i := range fromTruth {
		match := "OK"
		gapUS := fromScrape[i].Latency.Sub(fromTruth[i].Latency).Microseconds()
		if gapUS < 0 {
			gapUS = -gapUS
		}
		if fromScrape[i].Licensee != fromTruth[i].Licensee || gapUS > dmsToleranceUS {
			match = "MISMATCH"
		}
		fmt.Printf("%4d  %-24s  %-24s %s (%s)\n", i+1,
			fromTruth[i].Licensee, fromScrape[i].Licensee,
			fromScrape[i].Latency, match)
	}
}
