// Reliability: the paper's §5 analysis — why the slower Webline
// Holdings survives against the faster New Line Networks — plus the
// weather simulation that makes the paper's speculation quantitative.
package main

import (
	"fmt"
	"log"

	"hftnetview"
	"hftnetview/internal/core"
	"hftnetview/internal/radio"
	"hftnetview/internal/report"
	"hftnetview/internal/sites"
)

func main() {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	date := hftnetview.Snapshot()

	// Table 3: alternate path availability.
	t3, err := report.Table3(db, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3.String())

	// Fig 4a/4b: link lengths and operating frequencies.
	f4a, err := report.Fig4a(db, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4a.String())
	f4b, err := report.Fig4b(db, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4b.String())

	// A single illustrative storm: a violent cell mid-corridor.
	opts := hftnetview.DefaultOptions()
	nln, err := core.Reconstruct(db, "New Line Networks", date, sites.All, opts)
	if err != nil {
		log.Fatal(err)
	}
	wh, err := core.Reconstruct(db, "Webline Holdings", date, sites.All, opts)
	if err != nil {
		log.Fatal(err)
	}
	storm := radio.GenerateStorm(2020, sites.CME.Location, sites.NY4.Location,
		radio.DefaultStormConfig())
	path := hftnetview.PathNY4()
	for _, n := range []*core.Network{nln, wh} {
		impact, err := n.RouteUnderStorm(path, storm, radio.DefaultFadeMarginDB)
		if err != nil {
			log.Fatal(err)
		}
		status := "DISCONNECTED"
		if impact.Connected {
			status = impact.Route.Latency.String()
		}
		fmt.Printf("%-20s storm #2020: %2d links down, fair %s -> storm %s\n",
			n.Licensee, impact.LinksDown, impact.FairWeather.Latency, status)
	}
	fmt.Println()

	// The full Monte-Carlo sweep.
	weather, err := report.Weather(db, date, 25, radio.DefaultFadeMarginDB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(weather.String())
	fmt.Println("In fair weather NLN wins by ~10 µs; in storms WH's 6 GHz braid keeps it on air.")
}
