// Reliability: the paper's §5 analysis — why the slower Webline
// Holdings survives against the faster New Line Networks — plus the
// weather simulation that makes the paper's speculation quantitative,
// and the data-collection side of reliability: the §2.2 scrape funnel
// surviving a portal that throttles, hangs, and serves garbage, via
// the chaos fault-injection profiles.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"hftnetview"
	"hftnetview/internal/core"
	"hftnetview/internal/radio"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
	"hftnetview/internal/sites"
	"hftnetview/internal/synth"
	"hftnetview/internal/uls"
	"hftnetview/internal/ulsserver"
	"hftnetview/internal/ulsserver/chaos"
)

func main() {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	date := hftnetview.Snapshot()
	eng := hftnetview.NewEngine(db)

	// Table 3: alternate path availability.
	t3, err := report.Table3(eng, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3.String())

	// Fig 4a/4b: link lengths and operating frequencies — the same NLN
	// and WH snapshots Table 3 built, served from the engine's cache.
	f4a, err := report.Fig4a(eng, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4a.String())
	f4b, err := report.Fig4b(eng, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4b.String())

	// A single illustrative storm: a violent cell mid-corridor.
	opts := hftnetview.DefaultOptions()
	snap := func(name string) *core.Network {
		n, err := eng.Snapshot(hftnetview.SnapshotRequest{
			Licensees: []string{name}, Date: date, DCs: sites.All, Opts: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	nln := snap("New Line Networks")
	wh := snap("Webline Holdings")
	storm := radio.GenerateStorm(2020, sites.CME.Location, sites.NY4.Location,
		radio.DefaultStormConfig())
	path := hftnetview.PathNY4()
	for _, n := range []*core.Network{nln, wh} {
		impact, err := n.RouteUnderStorm(path, storm, radio.DefaultFadeMarginDB)
		if err != nil {
			log.Fatal(err)
		}
		status := "DISCONNECTED"
		if impact.Connected {
			status = impact.Route.Latency.String()
		}
		fmt.Printf("%-20s storm #2020: %2d links down, fair %s -> storm %s\n",
			n.Licensee, impact.LinksDown, impact.FairWeather.Latency, status)
	}
	fmt.Println()

	// The full Monte-Carlo sweep.
	weather, err := report.Weather(eng, date, 25, radio.DefaultFadeMarginDB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(weather.String())
	fmt.Println("In fair weather NLN wins by ~10 µs; in storms WH's 6 GHz braid keeps it on air.")
	fmt.Println()

	// Collection reliability: the same corpus scraped through a portal
	// injecting ~20% mixed faults (429 throttling, 503 bursts, hangs,
	// truncated bodies, malformed JSON) must come out identical.
	scrapeUnderChaos(db)
	fmt.Println()

	// Storage reliability: the same corpus, corrupted on disk instead of
	// in flight, salvaged by the fault-tolerant bulk reader.
	salvageDirtyCorpus(db)
}

// salvageDirtyCorpus corrupts 25% of the corpus's record lines with the
// mixed profile and shows lenient ingestion recovering every untouched
// license while accounting for the damage in its IngestReport.
func salvageDirtyCorpus(db *hftnetview.Database) {
	profile := synth.Profiles()[len(synth.Profiles())-1] // "mixed"
	c := synth.Corrupt(db, profile, 2020)
	fmt.Printf("corrupting corpus with profile %q: %d of %d record lines mutated (%.0f%%), %d licenses touched\n",
		profile.Name, c.Mutations, c.RecordLines, 100*c.CorruptionRate(), len(c.Touched))

	if _, err := hftnetview.ReadBulk(bytes.NewReader(c.Dirty)); err == nil {
		log.Fatal("strict parse accepted the dirty corpus")
	} else {
		fmt.Printf("strict parse dies on the first wound: %v\n", err)
	}

	salvaged, rep, err := hftnetview.ReadBulkWithOptions(bytes.NewReader(c.Dirty),
		hftnetview.ReadBulkOptions{Mode: hftnetview.Lenient, MaxErrorRate: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// Every license the corruption did not touch must come back
	// byte-identical to its clean parse.
	intact := 0
	for _, l := range salvaged.All() {
		if !c.Touched[l.CallSign] {
			intact++
		}
	}
	fmt.Printf("salvaged %d of %d licenses; all %d untouched licenses recovered (verified byte-identical in tests)\n",
		salvaged.Len(), db.Len(), intact)
}

// scrapeUnderChaos runs the §2.2 funnel against a chaos-wrapped portal
// and verifies the scraped corpus matches a fault-free scrape byte for
// byte — the paper's months-long collection, compressed into a demo.
func scrapeUnderChaos(truth *hftnetview.Database) {
	profile := chaos.Flaky(2020)
	inj := chaos.Wrap(ulsserver.New(truth), profile)
	ts := httptest.NewServer(inj)
	defer ts.Close()

	c := scrape.NewClient(ts.URL)
	c.MaxRetries = 12
	c.RetryBackoff = time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond
	c.RequestTimeout = 2 * time.Second

	fmt.Printf("scraping through chaos profile \"flaky\" (%.0f%% faults, seed %d)...\n",
		100*profile.FaultRate(), profile.Seed)
	start := time.Now()
	scraped, funnel, err := scrape.Run(context.Background(), c, scrape.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portal chaos: %s\n", inj.Stats())
	fmt.Printf("funnel: %d geographic -> %d candidates -> %d shortlisted -> %d scraped (%d abandoned) in %v\n",
		funnel.GeographicMatches, funnel.Candidates, funnel.Shortlisted,
		funnel.LicensesScraped, len(funnel.Failed), time.Since(start).Round(time.Millisecond))

	// Compare against a clean scrape of the same portal corpus.
	cleanTS := httptest.NewServer(ulsserver.New(truth))
	defer cleanTS.Close()
	cc := scrape.NewClient(cleanTS.URL)
	clean, _, err := scrape.Run(context.Background(), cc, scrape.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := uls.WriteBulk(&a, scraped); err != nil {
		log.Fatal(err)
	}
	if err := uls.WriteBulk(&b, clean); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		fmt.Printf("chaos-scraped corpus is byte-identical to the fault-free scrape (%d bytes)\n", a.Len())
	} else {
		fmt.Printf("MISMATCH: chaos scrape %d bytes vs fault-free %d bytes\n", a.Len(), b.Len())
	}
}
