// Futurework: the analyses the paper proposes as next steps (§2.4, §3,
// §6), run on the corpus — per-tower radio overhead bounds, joint-entity
// identification, and multi-network subscription strategies.
package main

import (
	"fmt"
	"log"

	"hftnetview"
	"hftnetview/internal/core"
	"hftnetview/internal/entity"
	"hftnetview/internal/report"
	"hftnetview/internal/sites"
)

func main() {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	date := hftnetview.Snapshot()
	eng := hftnetview.NewEngine(db)

	// §3: "if the per-tower added latency was higher than 1.4 µs, JM
	// would offer lower end-end latency" — find the exact crossover.
	rows, err := eng.ConnectedNetworks(date, hftnetview.PathNY4(),
		hftnetview.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var nln, jm core.NetworkSummary
	for _, r := range rows {
		switch r.Licensee {
		case "New Line Networks":
			nln = r
		case "Jefferson Microwave":
			jm = r
		}
	}
	if o, ok := core.CrossoverOverhead(nln, jm); ok {
		fmt.Printf("JM (%d towers) overtakes NLN (%d towers) above %.2f µs per tower.\n\n",
			jm.TowerCount, nln.TowerCount, o.Microseconds())
	}
	sweep, err := report.OverheadSweep(eng, date)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sweep.String())

	// §2.4/§6: who files for whom?
	fmt.Println("Entity resolution:")
	for _, cluster := range entity.ClustersByFRN(db) {
		fmt.Printf("  shared FRN: %v\n", cluster)
	}
	pairs, err := entity.ComplementaryPairsVia(eng, date, hftnetview.PathNY4(),
		nil, hftnetview.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		u, err := eng.Snapshot(hftnetview.SnapshotRequest{
			Licensees: []string{p.A, p.B}, Date: date,
			DCs: sites.All, Opts: core.DefaultOptions(),
		})
		if err != nil {
			log.Fatal(err)
		}
		apa, _ := u.APA(hftnetview.PathNY4())
		fmt.Printf("  complementary: %s + %s form an end-to-end network: "+
			"%s over %d towers, APA %.0f%%\n",
			p.A, p.B, p.Latency, p.TowerCount, apa*100)
	}
	fmt.Println()

	// §5 closing: subscription strategies under weather.
	strat, err := report.RaceStrategies(eng, date, 20, 40, 2e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strat.String())

}
