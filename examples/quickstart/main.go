// Quickstart: generate the corridor corpus, reconstruct the 1 April
// 2020 snapshot, and print the state of the race (the paper's Table 1).
package main

import (
	"fmt"
	"log"

	"hftnetview"
)

func main() {
	// The corpus substitutes for scraping the live FCC portal; it is
	// deterministic, so every run sees the same corridor.
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d licenses across %d licensees\n\n",
		db.Len(), len(db.Licensees()))

	rows, err := hftnetview.ConnectedNetworks(db, hftnetview.Snapshot(),
		hftnetview.PathNY4(), hftnetview.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Connected CME-NY4 networks, fastest first:")
	for i, r := range rows {
		fmt.Printf("%d. %-24s %s  (%d towers, APA %.0f%%)\n",
			i+1, r.Licensee, r.Latency, r.TowerCount, r.APA*100)
	}

	leader := rows[0]
	runnerUp := rows[1]
	gap := runnerUp.Latency.Sub(leader.Latency)
	fmt.Printf("\n%s leads %s by %.2f µs — the scale this race is fought at.\n",
		leader.Licensee, runnerUp.Licensee, gap.Microseconds())
}
