// Evolution: the paper's longitudinal study (§4, Figs 1–2) — how the
// corridor's networks rose, improved, and died over 2013–2020.
package main

import (
	"fmt"
	"log"

	"hftnetview"
	"hftnetview/internal/report"
)

func main() {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		log.Fatal(err)
	}
	eng := hftnetview.NewEngine(db)

	fig1, err := report.Fig1(eng, 2013, 2020)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig1.String())

	fig2, err := report.Fig2(eng, 2013, 2020)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2.String())

	// The §4 narrative beats, computed rather than asserted. The NTC
	// sweep repeats Fig 1's reconstructions, so it runs entirely from
	// the engine's memo store.
	dates := hftnetview.PaperSampleDates(2013, 2020)
	opts := hftnetview.DefaultOptions()

	ntc, err := eng.Evolution("National Tower Company",
		hftnetview.PathNY4(), dates, opts)
	if err != nil {
		log.Fatal(err)
	}
	lastAlive := 0
	for i, pt := range ntc {
		if pt.Connected {
			lastAlive = i
		}
	}
	fmt.Printf("National Tower Company's last connected year: %d — ", dates[lastAlive].Year)
	g17, c17 := db.GrantsCancellationsInYear("National Tower Company", 2017)
	g18, c18 := db.GrantsCancellationsInYear("National Tower Company", 2018)
	fmt.Printf("it cancelled %d licenses across 2017-18 (granting %d) and vanished.\n",
		c17+c18, g17+g18)

	g15, _ := db.GrantsCancellationsInYear("New Line Networks", 2015)
	nlnCount := db.ActiveCountByLicensee(dates[3])["New Line Networks"]
	fmt.Printf("New Line Networks was granted %d licenses in 2015 (%d active on %s) "+
		"and first connected end-to-end that January.\n", g15, nlnCount, dates[3])
}
