// Designer: the cISP-style network design exercise (§6/§7) — given
// candidate tower sites and a growing budget, build the lowest-latency
// corridor network and spend the surplus on the redundancy the paper's
// §6 lessons call for, without ever tearing anything down.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"hftnetview/internal/design"
	"hftnetview/internal/geo"
	"hftnetview/internal/report"
	"hftnetview/internal/sites"
	"hftnetview/internal/units"
)

func main() {
	t, err := report.DesignSweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t.String())

	// Incremental deployment (§7): grow one build across four funding
	// rounds; each stage strictly extends the previous one.
	cands := candidates()
	p := design.Problem{
		Src: 0, Dst: len(cands) - 1,
		Candidates:   cands,
		Cost:         design.DefaultCostModel(),
		StretchBound: 1.05,
	}
	stages, err := design.Incremental(p, []float64{42, 55, 75, 110})
	if err != nil {
		log.Fatal(err)
	}
	c := units.CLatency(geo.Distance(sites.CME.Location, sites.NY4.Location))
	fmt.Println("Incremental deployment:")
	for i, n := range stages {
		fmt.Printf("  round %d: cost %6.1f, %2d links (%2d alternates), "+
			"latency %s (stretch %.4f), APA %.0f%%\n",
			i+1, n.Cost, len(n.Links), altCount(n), n.Latency,
			n.Latency.Stretch(c), 100*n.APA(p.Src, p.Dst, p.StretchBound))
	}
	fmt.Println("\nNo round removes anything built earlier — the §4 growth pattern, by construction.")
}

func altCount(n *design.Network) int {
	alts := 0
	for _, l := range n.Links {
		if l.Alternate {
			alts++
		}
	}
	return alts
}

// candidates mirrors the report experiment's deterministic site field.
func candidates() []design.Site {
	rng := rand.New(rand.NewPCG(5, 5))
	a, b := sites.CME.Location, sites.NY4.Location
	brg := geo.InitialBearing(a, b)
	var out []design.Site
	out = append(out, design.Site{Point: a, TowerCost: 1})
	n := 30
	for i := 1; i < n; i++ {
		frac := float64(i) / float64(n)
		base := geo.Interpolate(a, b, frac)
		out = append(out, design.Site{
			Point:     geo.Offset(base, brg, 0, (rng.Float64()-0.5)*2000),
			TowerCost: 1,
		})
		for e := 0; e < 2; e++ {
			out = append(out, design.Site{
				Point:     geo.Offset(base, brg, 0, 4000+6000*rng.Float64()),
				TowerCost: 1,
			})
		}
	}
	out = append(out, design.Site{Point: b, TowerCost: 1})
	return out
}
