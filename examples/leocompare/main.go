// LEO compare: the paper's Fig 5 / §6 outlook — where terrestrial
// microwave beats satellites and where LEO constellations win.
package main

import (
	"fmt"
	"log"

	"hftnetview/internal/geo"
	"hftnetview/internal/leo"
	"hftnetview/internal/report"
	"hftnetview/internal/sites"
)

func main() {
	t, err := report.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t.String())

	// Altitude sweep on the corridor: even a 300 km shell cannot beat
	// towers — the up-and-down overhead dominates on 1,186 km.
	fmt.Println("CME-NY4 altitude sweep (one-way ms):")
	mw := leo.TerrestrialMicrowave(sites.CME.Location, sites.NY4.Location, 1.0014)
	for alt := 300.0; alt <= 1100; alt += 200 {
		c := leo.Constellation{AltitudeM: alt * 1000, SpacingM: 2000e3}
		l, bd, err := c.PathLatency(sites.CME.Location, sites.NY4.Location)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  shell %4.0f km: LEO %.3f ms (%d ISL hops, %.0f km flown) vs MW %.3f ms\n",
			alt, l.Milliseconds(), bd.Hops, bd.TotalM/1000, mw.Milliseconds())
	}

	// Tokyo–New York, the "longer high-value segment" the paper names
	// as the likely first LEO adoption.
	tokyo := geo.Point{Lat: 35.6762, Lon: 139.6503}
	nyc := geo.Point{Lat: 40.7128, Lon: -74.0060}
	c := leo.Starlink550()
	l, _, err := c.PathLatency(tokyo, nyc)
	if err != nil {
		log.Fatal(err)
	}
	fiber := leo.Fiber(tokyo, nyc, 1.55)
	fmt.Printf("\nTokyo-New York: LEO %.1f ms vs trans-Pacific fiber %.1f ms "+
		"(%.1f ms saved one-way)\n", l.Milliseconds(), fiber.Milliseconds(),
		fiber.Milliseconds()-l.Milliseconds())
}
