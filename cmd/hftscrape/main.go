// Command hftscrape runs the paper's §2.2 data-collection pipeline
// against a ULS portal: geographic search around CME, MG/FXO candidate
// filtering, the ≥11-filings shortlist, and detail scraping of every
// shortlisted license. The scraped corpus is written as a ULS bulk file.
//
// Usage:
//
//	hftscrape -portal http://127.0.0.1:8080 [-out corpus.uls]
//	          [-rate-ms 0] [-radius-km 10] [-min-filings 11]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hftnetview"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
)

func main() {
	portal := flag.String("portal", "", "portal base URL (required)")
	out := flag.String("out", "corpus.uls", "output bulk file")
	rateMS := flag.Int("rate-ms", 0, "minimum milliseconds between requests")
	radiusKM := flag.Float64("radius-km", 10, "geographic seed radius around CME")
	minFilings := flag.Int("min-filings", 11, "shortlist cutoff")
	flag.Parse()
	if *portal == "" {
		flag.Usage()
		os.Exit(2)
	}

	c := scrape.NewClient(*portal)
	c.MinInterval = time.Duration(*rateMS) * time.Millisecond
	opts := scrape.DefaultPipelineOptions()
	opts.RadiusKM = *radiusKM
	opts.MinFilings = *minFilings

	start := time.Now()
	db, funnel, err := scrape.Run(context.Background(), c, opts)
	if err != nil {
		log.Fatalf("hftscrape: %v", err)
	}
	fmt.Print(report.ScrapeFunnelTable(funnel.GeographicMatches, funnel.Candidates,
		funnel.Shortlisted, funnel.LicensesScraped, funnel.ShortlistedNames))
	fmt.Printf("\nscraped in %v\n", time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("hftscrape: %v", err)
	}
	defer f.Close()
	if err := hftnetview.WriteBulk(f, db); err != nil {
		log.Fatalf("hftscrape: writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d licenses to %s\n", db.Len(), *out)
}
