// Command hftscrape runs the paper's §2.2 data-collection pipeline
// against a ULS portal: geographic search around CME, MG/FXO candidate
// filtering, the ≥11-filings shortlist, and detail scraping of every
// shortlisted license. The scraped corpus is written as a ULS bulk file.
//
// Usage:
//
//	hftscrape -portal http://127.0.0.1:8080 [-out corpus.uls]
//	          [-rate-ms 0] [-radius-km 10] [-min-filings 11]
//	          [-workers 4] [-retries 3] [-request-timeout 30s]
//	          [-retry-budget 0] [-checkpoint scrape.journal]
//
// The pipeline is built for flaky portals: 429/5xx responses, hangs,
// and truncated pages are retried with jittered backoff (honoring
// Retry-After); licenses that stay unscrapable are recorded and
// skipped rather than aborting the run. With -checkpoint, completed
// work is journaled so an interrupted scrape — ^C, crash, network
// death — resumes where it left off when rerun with the same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hftnetview"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
)

func main() {
	portal := flag.String("portal", "", "portal base URL (required)")
	out := flag.String("out", "corpus.uls", "output bulk file")
	rateMS := flag.Int("rate-ms", 0, "minimum milliseconds between requests")
	radiusKM := flag.Float64("radius-km", 10, "geographic seed radius around CME")
	minFilings := flag.Int("min-filings", 11, "shortlist cutoff")
	workers := flag.Int("workers", 4, "concurrent detail-page fetches")
	retries := flag.Int("retries", 3, "retries per request (0 = fail on first error)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second,
		"per-request attempt timeout (0 = none)")
	retryBudget := flag.Duration("retry-budget", 0,
		"total wall-clock budget per fetch including retries (0 = unbounded)")
	checkpoint := flag.String("checkpoint", "",
		"journal file for resumable scrapes (rerun with identical flags to resume)")
	flag.Parse()
	if *portal == "" {
		flag.Usage()
		os.Exit(2)
	}

	c := scrape.NewClient(*portal)
	c.MinInterval = time.Duration(*rateMS) * time.Millisecond
	c.MaxRetries = *retries
	c.RequestTimeout = *requestTimeout
	c.RetryBudget = *retryBudget
	opts := scrape.DefaultPipelineOptions()
	opts.RadiusKM = *radiusKM
	opts.MinFilings = *minFilings
	opts.Workers = *workers
	opts.CheckpointPath = *checkpoint

	start := time.Now()
	db, funnel, err := scrape.Run(context.Background(), c, opts)
	if err != nil {
		if *checkpoint != "" {
			log.Printf("hftscrape: progress saved to %s; rerun to resume", *checkpoint)
		}
		log.Fatalf("hftscrape: %v", err)
	}
	fmt.Print(report.ScrapeFunnelTable(funnel.GeographicMatches, funnel.Candidates,
		funnel.Shortlisted, funnel.LicensesScraped, funnel.ShortlistedNames))
	if funnel.ResumedLicenses > 0 {
		fmt.Printf("\nresumed %d licenses from %s\n", funnel.ResumedLicenses, *checkpoint)
	}
	for _, name := range funnel.FailedLicensees {
		fmt.Fprintf(os.Stderr, "WARNING: licensee %q could not be enumerated; its filings are missing\n", name)
	}
	for _, f := range funnel.Failed {
		fmt.Fprintf(os.Stderr, "WARNING: %s abandoned (%s): %s\n", f.CallSign, f.Class, f.Err)
	}
	fmt.Printf("\nscraped in %v\n", time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("hftscrape: %v", err)
	}
	defer f.Close()
	if err := hftnetview.WriteBulk(f, db); err != nil {
		log.Fatalf("hftscrape: writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d licenses to %s\n", db.Len(), *out)
}
