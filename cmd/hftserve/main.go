// Command hftserve is the always-on query service over the snapshot
// engine: the paper's analyses served as an HTTP API that sheds load
// instead of collapsing, breaks the circuit around a failing engine,
// hot-reloads its corpus without dropping a request, and drains
// cleanly on shutdown.
//
// Usage:
//
//	hftserve [-addr :8090] [-bulk corpus.uls] [-store-dir DIR]
//	         [-watch 0] [-max-error-rate 0.05] [-drop-license]
//	         [-max-inflight 64] [-queue-wait 100ms] [-retry-after 1s]
//	         [-request-timeout 10s]
//	         [-breaker-failures 5] [-breaker-cooldown 5s]
//	         [-drain-timeout 15s]
//	         [-watch-max-streams 64] [-watch-heartbeat 15s]
//	         [-keyframe-interval 16]
//	         [-pull-from URL] [-pull-front URL] [-pull-interval 2s] [-pull-keep 3]
//	         [-pull-max-bps 0]
//	         [-announce URL] [-announce-name NAME] [-announce-url URL]
//	         [-scrub-interval 0] [-scrub-pause 2ms]
//
// Endpoints:
//
//	/v1/snapshot   networks active on a path at a date (Table 1)
//	/v1/rank       fastest networks per corridor path (Table 2)
//	/v1/evolution  one licensee's longitudinal trajectory (Figs 1–2)
//	/v1/watch      SSE replay of a licensee's evolution: snapshot, then
//	               one diff frame per event date (curl -N to follow)
//	/v1/apa        alternate-path availability + complementary pairs (§5, §2.4)
//	/v1/gen/*      generation shipping (with -store-dir): manifest +
//	               segments, byte-for-byte the store's artifacts
//	/healthz       liveness
//	/readyz        readiness + reload health + generation identity
//	/statsz        engine/breaker/admission counters (+ pull status)
//
// Without -bulk the synthetic corridor corpus is served and reloads
// are disabled. With -bulk, SIGHUP re-ingests the file (and -watch N
// polls it every N); a reload that fails the ingestion error budget or
// empties the corpus is refused — the old generation keeps serving and
// the failure is surfaced on /readyz.
//
// With -store-dir, parsed corpora persist as crash-safe checksummed
// generations: the service warm-starts from the newest verified
// generation (serving within milliseconds) while the bulk file
// re-ingests in the background and hot-swaps once validated, every
// successful reload persists a new generation, and graceful shutdown
// closes the store so no temp debris survives a SIGTERM mid-persist.
// Inspect or prune the store with hftstore. A store also turns on the
// /v1/gen shipping endpoints, making this instance a primary that
// replicas can pull from.
//
// With -pull-from (requires -store-dir, excludes -bulk) the instance
// is a replica: it polls the primary's newest generation, downloads
// and cryptographically verifies it, installs it into the local store,
// and hot-swaps it live — refusing corrupt shipments and keeping the
// previous generation serving. Put replicas behind hftfront for
// failover routing. With -pull-front the replica instead resolves its
// source dynamically from the front tier's /v1/fleet/source each poll:
// when the front promotes a new primary (hftfront -promote), the
// replica re-targets on its own, refuses stale lower-epoch resolutions
// (epoch fencing), quarantines any local generations that diverge from
// the new source's history, and — should this very instance be the
// promoted source — stops pulling entirely.
//
// Replication is resumable and delta-based: an interrupted download
// leaves its verified progress in the store's staging area and the next
// poll continues it with ranged GETs, and segments whose SHA-256 digest
// the replica already holds locally are hard-linked instead of fetched
// (an unchanged segment between generations N and N+1 ships zero
// bytes). -pull-max-bps caps download throughput with a token bucket so
// replication cannot starve live serving — the staging area makes the
// stretched transfer safe. Transfer counters (resumed, reused_segments,
// bytes_saved) appear under "pull" on /statsz, and the shipping side's
// serve counters under "ship".
//
// With -scrub-interval > 0 (requires -store-dir) a background
// anti-entropy scrubber re-verifies every committed generation on the
// deep fsck ladder, pausing -scrub-pause between segments so scrubbing
// stays off the serving path. A corrupt segment is re-fetched from a
// peer holding a digest-matching copy (the front's member table when
// -pull-front or -announce is set, else the -pull-from primary),
// verified, and swapped in place without a restart; the corrupt
// original is preserved under quarantine/. Counters appear under
// "scrub" on /statsz.
//
// With -announce the instance self-registers with an hftfront front
// tier: it joins at /v1/fleet/join, renews its TTL lease on the
// front-suggested heartbeat, and leaves gracefully on shutdown — no
// static -replica list needed on the front. -announce-url overrides
// the routed-to URL (required when the bind address is not reachable
// as announced, e.g. behind NAT); -announce-name the member name.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hftnetview"
	"hftnetview/internal/fleet"
	"hftnetview/internal/serve"
	"hftnetview/internal/store"
	"hftnetview/internal/uls"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	bulk := flag.String("bulk", "", "ULS bulk file to serve (default: synthetic corpus; enables SIGHUP reload)")
	storeDir := flag.String("store-dir", "", "corpus store directory (enables crash-safe persistence and warm starts)")
	watch := flag.Duration("watch", 0, "poll the bulk file for changes this often (0 = SIGHUP only)")
	maxErrorRate := flag.Float64("max-error-rate", 0.05, "ingestion error budget for loads and reloads")
	dropLicense := flag.Bool("drop-license", false, "quarantine whole licenses on record errors instead of salvaging")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently executing queries")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max admission-queue wait before shedding with 503")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive engine failures that trip the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker rejects before probing")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
	watchMaxStreams := flag.Int("watch-max-streams", 64, "max concurrently open /v1/watch replay streams")
	watchHeartbeat := flag.Duration("watch-heartbeat", 15*time.Second, "SSE heartbeat cadence on idle /v1/watch streams")
	keyframeInterval := flag.Int("keyframe-interval", 0, "engine replay keyframe spacing in events (0 = engine default)")
	pullFrom := flag.String("pull-from", "", "replicate generations from this primary's base URL (requires -store-dir, excludes -bulk)")
	pullFront := flag.String("pull-front", "", "resolve the replication source dynamically from this front tier's /v1/fleet/source (requires -store-dir, excludes -bulk; overrides -pull-from once a source is elected)")
	pullInterval := flag.Duration("pull-interval", 2*time.Second, "replication poll cadence (jittered)")
	pullKeep := flag.Int("pull-keep", 3, "local generations kept after each replicated install")
	pullMaxBps := flag.Int64("pull-max-bps", 0, "replication download cap in bytes/sec (0 = unlimited; interrupted transfers resume from the staging area)")
	announce := flag.String("announce", "", "front tier base URL to self-register with (lease-based membership)")
	announceName := flag.String("announce-name", "", "member name to announce (default: the announced URL's host:port)")
	announceURL := flag.String("announce-url", "", "base URL the front should route to (default: http://127.0.0.1<addr> for a :port bind)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background anti-entropy scrub cadence over the store (0 = off; requires -store-dir)")
	scrubPause := flag.Duration("scrub-pause", 2*time.Millisecond, "pause between segment verifications inside a scrub cycle")
	flag.Parse()

	replica := *pullFrom != "" || *pullFront != ""
	if replica && *storeDir == "" {
		log.Fatal("hftserve: -pull-from/-pull-front need -store-dir (pulled generations are verified into the local store)")
	}
	if replica && *bulk != "" {
		log.Fatal("hftserve: -pull-from/-pull-front and -bulk are exclusive (a replica's corpus comes from its primary)")
	}
	if *scrubInterval > 0 && *storeDir == "" {
		log.Fatal("hftserve: -scrub-interval needs -store-dir (there is nothing to scrub without one)")
	}

	// The instance's own base URL: what it announces to the front, what
	// the puller uses to recognise "the promoted source is me", and what
	// the repair fetcher excludes from its peer candidates.
	self := strings.TrimSuffix(*announceURL, "/")
	if self == "" {
		bind := *addr
		if strings.HasPrefix(bind, ":") {
			bind = "127.0.0.1" + bind
		}
		self = "http://" + bind
	}

	srv := serve.New(serve.Config{
		MaxInFlight:      *maxInflight,
		MaxQueueWait:     *queueWait,
		RetryAfter:       *retryAfter,
		RequestTimeout:   *requestTimeout,
		BreakerThreshold: *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
		WatchMaxStreams:  *watchMaxStreams,
		WatchHeartbeat:   *watchHeartbeat,
		KeyframeInterval: *keyframeInterval,
	})

	reloadOpts := serve.ReloadOptions{MaxErrorRate: *maxErrorRate}
	if *dropLicense {
		reloadOpts.Mode = uls.DropLicense
	}

	handler := srv.Handler()
	opts := serve.GracefulOptions{DrainTimeout: *drainTimeout}

	var st *store.Store
	warm := false
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatalf("hftserve: opening store %s: %v", *storeDir, err)
		}
		srv.AttachStore(st)
		// A persistent store makes this instance a shippable primary.
		shipper := fleet.NewShipper(st)
		handler = fleet.WithShipping(handler, shipper)
		srv.RegisterStats("ship", func() any { return shipper.Status() })
		opts.OnShutdown = func() {
			if err := srv.CloseStore(); err != nil {
				log.Printf("hftserve: closing store: %v", err)
			}
		}
		rep, err := srv.WarmStart()
		switch {
		case err == nil:
			warm = true
			log.Printf("hftserve: warm start: serving persisted generation %d", rep.Served)
			if len(rep.Discarded) > 0 {
				log.Printf("hftserve: recovery discarded %d generation(s):\n%s", len(rep.Discarded), rep)
			}
		case errors.Is(err, store.ErrNoGeneration):
			log.Printf("hftserve: store %s has no verified generation, booting cold", *storeDir)
		default:
			log.Printf("hftserve: warm start failed, booting cold: %v", err)
		}
	}

	// loadInitial is the cold-boot corpus source: the bulk file, or the
	// synthetic corridor corpus without one. With a store attached the
	// resulting generation is persisted by SetCorpus/LoadCorpusFile.
	loadInitial := func() error {
		if *bulk == "" {
			db, err := hftnetview.GenerateCorpus()
			if err != nil {
				return fmt.Errorf("generating corpus: %w", err)
			}
			srv.SetCorpus(db, "synthetic corpus")
			return nil
		}
		return srv.LoadCorpusFile(*bulk, reloadOpts)
	}
	switch {
	case replica:
		// Replica: the corpus arrives from the primary. A warm start
		// already serves the last pulled generation; otherwise /readyz
		// stays not-ready until the first verified install lands.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		puller := fleet.NewPuller(fleet.PullerConfig{
			Primary:        *pullFrom,
			Front:          strings.TrimSuffix(*pullFront, "/"),
			Self:           self,
			Store:          st,
			Server:         srv,
			Interval:       *pullInterval,
			Keep:           *pullKeep,
			MaxBytesPerSec: *pullMaxBps,
		})
		go puller.Run(ctx)
		switch {
		case *pullFront != "" && *pullFrom != "":
			log.Printf("hftserve: replicating from the source elected by %s (seed %s) every %v (keep %d)",
				*pullFront, *pullFrom, *pullInterval, *pullKeep)
		case *pullFront != "":
			log.Printf("hftserve: replicating from the source elected by %s every %v (keep %d)",
				*pullFront, *pullInterval, *pullKeep)
		default:
			log.Printf("hftserve: replicating from %s every %v (keep %d)", *pullFrom, *pullInterval, *pullKeep)
		}
	case warm && *bulk != "":
		// The persisted generation is already serving; re-ingest the
		// bulk file in the background and hot-swap once it validates.
		go func() {
			if err := loadInitial(); err != nil {
				log.Printf("hftserve: background re-ingest of %s failed; persisted generation keeps serving: %v", *bulk, err)
				return
			}
			log.Printf("hftserve: background re-ingest of %s complete: generation hot-swapped", *bulk)
		}()
	case warm:
		// Nothing to re-ingest; the recovered corpus serves as-is.
	default:
		if err := loadInitial(); err != nil {
			log.Fatalf("hftserve: loading corpus: %v", err)
		}
	}

	if *scrubInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := store.ScrubConfig{Interval: *scrubInterval, Pause: *scrubPause}
		var peerSource string
		var peers fleet.PeerLister
		switch {
		case *pullFront != "":
			peerSource = "members of front " + *pullFront
			peers = fleet.FrontMembers(strings.TrimSuffix(*pullFront, "/"), nil)
		case *announce != "":
			peerSource = "members of front " + *announce
			peers = fleet.FrontMembers(strings.TrimSuffix(*announce, "/"), nil)
		case *pullFrom != "":
			peerSource = "primary " + *pullFrom
			peers = fleet.StaticPeers(fleet.Replica{Name: "primary", URL: *pullFrom})
		}
		if peers != nil {
			cfg.Fetch = fleet.NewPeerFetcher(fleet.PeerFetcherConfig{Peers: peers, Self: self})
			log.Printf("hftserve: scrubbing every %v (pause %v), repairing from %s",
				*scrubInterval, *scrubPause, peerSource)
		} else {
			log.Printf("hftserve: scrubbing every %v (pause %v), detect-only: no peers to repair from",
				*scrubInterval, *scrubPause)
		}
		scr := store.NewScrubber(st, cfg)
		srv.RegisterStats("scrub", func() any { return scr.Status() })
		go scr.Run(ctx)
	}

	if *bulk != "" {
		// Hot reload: SIGHUP (via the graceful runner) and, with
		// -watch, an mtime poller; both feed the same watcher.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		hup := make(chan struct{}, 1)
		opts.OnHUP = func() {
			select {
			case hup <- struct{}{}:
			default: // a reload is already pending
			}
		}
		go srv.Watch(ctx, *bulk, *watch, hup, reloadOpts)
	} else {
		// No file to reload, but SIGHUP must not kill the process.
		hupC := make(chan os.Signal, 1)
		signal.Notify(hupC, syscall.SIGHUP)
		defer signal.Stop(hupC)
		go func() {
			for range hupC {
				log.Printf("hftserve: SIGHUP ignored (no -bulk file to reload)")
			}
		}()
	}

	log.Printf("hftserve: serving on %s (inflight %d, queue wait %v, breaker %d/%v)",
		*addr, *maxInflight, *queueWait, *breakerFailures, *breakerCooldown)
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	if *announce != "" {
		name := *announceName
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(self, "http://"), "https://")
		}
		annCtx, annCancel := context.WithCancel(context.Background())
		defer annCancel()
		ann := fleet.NewAnnouncer(fleet.AnnouncerConfig{
			Front:       strings.TrimSuffix(*announce, "/"),
			Self:        fleet.Replica{Name: name, URL: self},
			Server:      srv,
			LeaveOnExit: true,
		})
		go ann.Run(annCtx)
		// Cancel at shutdown start so the best-effort leave goes out
		// while the listener is still draining — the front evicts this
		// member immediately instead of waiting out the lease.
		httpSrv.RegisterOnShutdown(annCancel)
		log.Printf("hftserve: announcing as %s (%s) to %s", name, self, *announce)
	}
	// Shutdown waits for in-flight handlers; open replay streams must
	// drain (final `drain` frame, then close) rather than run out their
	// replays against that wait.
	httpSrv.RegisterOnShutdown(srv.StopWatches)
	if err := serve.ListenAndServeGraceful(httpSrv, opts); err != nil {
		log.Fatalf("hftserve: %v", err)
	}
	log.Printf("hftserve: drained cleanly")
}
