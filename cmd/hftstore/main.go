// Command hftstore inspects and maintains a corpus store directory —
// the crash-safe generation store hftserve persists parsed corpora
// into (-store-dir).
//
// Usage:
//
//	hftstore -dir DIR ls                    list generations, newest first
//	hftstore -dir DIR fsck [-quarantine]    verify every generation end to end
//	hftstore -dir DIR gc [-keep K]          retain the newest K generations (default 3)
//
// fsck re-reads every committed generation — manifest self-checksum,
// segment sizes and SHA-256 digests, per-block CRCs, full license
// decode and semantic re-validation — and inventories orphan segment
// directories and temp debris. With -quarantine, each corrupt
// generation is moved into the store's quarantine/ directory (retired
// from serving but never deleted — the bytes stay for forensics),
// unless nothing verifies at all: quarantining everything would leave
// an empty store, and the last copy, even corrupt, beats no copy. fsck
// exit codes: 0 everything verifies, 1 corruption was found (whether
// or not it was quarantined), 2 the store could not be read at all.
// gc never deletes the last recoverable corpus: when none of the
// newest K generations verifies, the retained set extends downward
// until one does.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hftnetview/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hftstore: ")

	dir := flag.String("dir", "", "store directory (required)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hftstore -dir DIR {ls | fsck [-quarantine] | gc [-keep K]}")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	s, err := store.Open(*dir)
	if err != nil {
		log.Print(err)
		if flag.Arg(0) == "fsck" {
			os.Exit(2) // fsck contract: 2 = could not read the store
		}
		os.Exit(1)
	}
	defer s.Close()

	switch cmd := flag.Arg(0); cmd {
	case "ls":
		runLs(s)
	case "fsck":
		runFsck(s, flag.Args()[1:])
	case "gc":
		runGC(s, flag.Args()[1:])
	default:
		log.Printf("unknown subcommand %q", cmd)
		flag.Usage()
		os.Exit(2)
	}
}

func runLs(s *store.Store) {
	gens, err := s.List()
	if err != nil {
		log.Fatal(err)
	}
	if len(gens) == 0 {
		fmt.Println("no generations")
		return
	}
	fmt.Printf("%-6s %-20s %9s %10s %4s  %s\n",
		"GEN", "CREATED", "LICENSES", "BYTES", "SEGS", "SOURCE")
	for _, g := range gens {
		created := ""
		if !g.CreatedAt.IsZero() {
			created = g.CreatedAt.UTC().Format("2006-01-02T15:04:05Z")
		}
		fmt.Printf("%-6d %-20s %9d %10d %4d  %s\n",
			g.ID, created, g.Licenses, g.Bytes, len(g.Segments), g.Source)
	}
}

func runFsck(s *store.Store, args []string) {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	quarantine := fs.Bool("quarantine", false,
		"move corrupt generations into the store's quarantine/ directory (refused when nothing verifies)")
	fs.Parse(args)

	rep, err := s.Fsck()
	if err != nil {
		log.Print(err)
		os.Exit(2) // could not read the store
	}
	anyOK := false
	var corrupt []int64
	for _, g := range rep.Generations {
		if g.OK {
			anyOK = true
			fmt.Printf("gen %d: ok (%d licenses, %d segments, %d bytes)\n",
				g.ID, g.Licenses, len(g.Info.Segments), g.Info.Bytes)
		} else {
			corrupt = append(corrupt, g.ID)
			fmt.Printf("gen %d: CORRUPT: %s\n", g.ID, g.Err)
		}
	}
	for _, o := range rep.Orphans {
		fmt.Printf("orphan: %s\n", o)
	}
	if len(rep.Generations) == 0 {
		fmt.Println("no generations")
	}
	if *quarantine && len(corrupt) > 0 {
		if !anyOK {
			// The last copy, even corrupt, beats no copy — same ladder
			// the scrubber and gc follow.
			log.Print("refusing to quarantine: no generation verifies, the store would be left empty")
		} else {
			for _, id := range corrupt {
				if err := s.QuarantineGeneration(id); err != nil {
					log.Printf("quarantining gen %d: %v", id, err)
					os.Exit(2)
				}
				fmt.Printf("gen %d: quarantined\n", id)
			}
		}
	}
	if !rep.OK() {
		os.Exit(1) // corruption was found (quarantined or not)
	}
}

func runGC(s *store.Store, args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	keep := fs.Int("keep", 3, "generations to retain")
	fs.Parse(args)
	removed, err := s.GC(*keep)
	if err != nil {
		log.Fatal(err)
	}
	if len(removed) == 0 {
		fmt.Println("nothing to remove")
		return
	}
	for _, id := range removed {
		fmt.Printf("removed gen %d\n", id)
	}
}
