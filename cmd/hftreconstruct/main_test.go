package main

import (
	"os"
	"path/filepath"
	"testing"

	"hftnetview"
	"hftnetview/internal/core"
	"hftnetview/internal/sites"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"New Line Networks":  "new-line-networks",
		"AQ2AT":              "aq2at",
		"Fox River Relay":    "fox-river-relay",
		"  Weird -- Name  ":  "weird-name",
		"Alpha & Sons <HFT>": "alpha-sons-hft",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadDBFromBulkFile(t *testing.T) {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.uls")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hftnetview.WriteBulk(f, db); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := loadDB(path, false, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Errorf("loaded %d licenses, want %d", loaded.Len(), db.Len())
	}
	if _, err := loadDB(filepath.Join(t.TempDir(), "missing.uls"), false, 0, ""); err == nil {
		t.Error("missing bulk file should error")
	}
}

func TestLoadDBLenientSalvagesDirtyBulk(t *testing.T) {
	// A bulk file with a malformed record aborts a strict load but is
	// salvaged by -lenient, with the quarantine file written.
	dir := t.TempDir()
	path := filepath.Join(dir, "dirty.uls")
	dirty := "HD|WQOK001|1|MG|A|01/02/2015|01/02/2025|\n" +
		"EN|WQOK001|Good Net|0001|ops@good.example\n" +
		"LO|WQOK001|1|41-46-00.0 N|088-12-00.0 W|200.0|90.0\n" +
		"LO|WQOK001|2|41-52-00.0 N|087-56-00.0 W|195.0|85.0\n" +
		"PA|WQOK001|1|1|2|FXO|45.0|225.0|38.0\n" +
		"FR|WQOK001|1|11245.0\n" +
		"HD|WQBAD02|not-a-number|MG|A|01/02/2015|01/02/2025|\n"
	if err := os.WriteFile(path, []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDB(path, false, 0, ""); err == nil {
		t.Fatal("strict load accepted a dirty bulk file")
	}
	qPath := filepath.Join(dir, "quarantine.tsv")
	db, err := loadDB(path, true, 0.9, qPath)
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("salvaged %d licenses, want 1", db.Len())
	}
	if _, ok := db.ByCallSign("WQOK001"); !ok {
		t.Error("clean license lost in salvage")
	}
	if _, err := os.Stat(qPath); err != nil {
		t.Errorf("quarantine file not written: %v", err)
	}
}

func TestEmitAndAnalyzeYAML(t *testing.T) {
	db, err := hftnetview.GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	n, err := emit(hftnetview.NewEngine(db), "Pierce Broadband", hftnetview.Snapshot(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == nil {
		t.Fatal("emit returned nil network")
	}
	for _, ext := range []string{".yaml", ".geojson", ".svg"} {
		p := filepath.Join(dir, "pierce-broadband"+ext)
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty", p)
		}
	}
	// The written YAML analyzes cleanly end to end.
	if err := analyzeYAML(filepath.Join(dir, "pierce-broadband.yaml")); err != nil {
		t.Errorf("analyzeYAML: %v", err)
	}
	if err := analyzeYAML(filepath.Join(dir, "nope.yaml")); err == nil {
		t.Error("missing YAML should error")
	}
	// And it round-trips into an equivalent network.
	data, err := os.ReadFile(filepath.Join(dir, "pierce-broadband.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	nf, err := core.ParseNetworkYAML(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.NetworkFromFile(nf, sites.All, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := n.BestRoute(hftnetview.PathNY4())
	r2, ok := back.BestRoute(hftnetview.PathNY4())
	if !ok || r1.Latency.String() != r2.Latency.String() {
		t.Errorf("YAML analysis latency %v, want %v", r2.Latency, r1.Latency)
	}
}
