// Command hftreconstruct rebuilds HFT networks from a license database
// at a date (§2.3) and writes the paper's artifacts: human-readable YAML
// network files, GeoJSON, and SVG corridor maps.
//
// Usage:
//
//	hftreconstruct [-bulk corpus.uls] [-date 2020-04-01]
//	               [-licensee "New Line Networks" | -all]
//	               [-out out/]
//	               [-lenient [-max-error-rate 0.5] [-quarantine-out q.tsv]]
//
// With -lenient, a dirty bulk file is salvaged instead of aborting the
// run: malformed records are skipped, the rest of each license is
// recovered, and the ingest report is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hftnetview"
	"hftnetview/internal/core"
	"hftnetview/internal/sites"
	"hftnetview/internal/viz"
)

func main() {
	bulk := flag.String("bulk", "", "ULS bulk file (default: synthetic corpus)")
	dateStr := flag.String("date", "2020-04-01", "reconstruction date")
	licensee := flag.String("licensee", "", "licensee to reconstruct")
	all := flag.Bool("all", false, "reconstruct every connected CME-NY4 network")
	analyze := flag.String("analyze", "", "analyze a network YAML file instead of a license database")
	outDir := flag.String("out", "out", "output directory")
	lenient := flag.Bool("lenient", false, "salvage malformed bulk records instead of aborting")
	maxErrorRate := flag.Float64("max-error-rate", 0, "with -lenient, abort if more than this fraction of record lines is bad (0 = no budget)")
	quarantineOut := flag.String("quarantine-out", "", "with -lenient, write quarantined call signs to this file")
	flag.Parse()

	if *analyze != "" {
		if err := analyzeYAML(*analyze); err != nil {
			log.Fatalf("hftreconstruct: %v", err)
		}
		return
	}

	db, err := loadDB(*bulk, *lenient, *maxErrorRate, *quarantineOut)
	if err != nil {
		log.Fatalf("hftreconstruct: %v", err)
	}
	date, err := hftnetview.ParseDate(*dateStr)
	if err != nil {
		log.Fatalf("hftreconstruct: %v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("hftreconstruct: %v", err)
	}

	// One engine serves both the -all connectivity scan and the
	// per-licensee emission; the scan fans its reconstructions out
	// across the engine's worker pool.
	eng := hftnetview.NewEngine(db)

	var names []string
	switch {
	case *all:
		rows, err := eng.ConnectedNetworks(date, hftnetview.PathNY4(),
			hftnetview.DefaultOptions())
		if err != nil {
			log.Fatalf("hftreconstruct: %v", err)
		}
		for _, r := range rows {
			names = append(names, r.Licensee)
		}
	case *licensee != "":
		names = []string{*licensee}
	default:
		fmt.Fprintln(os.Stderr, "hftreconstruct: need -licensee or -all")
		flag.Usage()
		os.Exit(2)
	}

	var nets []*core.Network
	for _, name := range names {
		n, err := emit(eng, name, date, *outDir)
		if err != nil {
			log.Fatalf("hftreconstruct: %s: %v", name, err)
		}
		nets = append(nets, n)
	}
	if *all && len(nets) > 1 {
		atlas := filepath.Join(*outDir, "atlas.svg")
		if err := os.WriteFile(atlas, viz.AtlasSVG(nets, viz.SVGOptions{}), 0o644); err != nil {
			log.Fatalf("hftreconstruct: atlas: %v", err)
		}
		fmt.Printf("wrote corridor atlas %s\n", atlas)
	}
}

func loadDB(bulkPath string, lenient bool, maxErrorRate float64, quarantineOut string) (*hftnetview.Database, error) {
	if bulkPath == "" {
		return hftnetview.GenerateCorpus()
	}
	f, err := os.Open(bulkPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !lenient {
		return hftnetview.ReadBulk(f)
	}
	db, rep, err := hftnetview.ReadBulkWithOptions(f, hftnetview.ReadBulkOptions{
		Mode:         hftnetview.Lenient,
		MaxErrorRate: maxErrorRate,
	})
	if rep != nil {
		fmt.Fprint(os.Stderr, rep)
	}
	if err != nil {
		return nil, err
	}
	if quarantineOut != "" {
		qf, err := os.Create(quarantineOut)
		if err != nil {
			return nil, err
		}
		defer qf.Close()
		if err := rep.WriteQuarantine(qf); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func emit(eng *hftnetview.Engine, name string, date hftnetview.Date, outDir string) (*core.Network, error) {
	n, err := eng.Snapshot(hftnetview.SnapshotRequest{
		Licensees: []string{name},
		Date:      date,
		DCs:       sites.All,
		Opts:      core.DefaultOptions(),
	})
	if err != nil {
		return nil, err
	}
	base := filepath.Join(outDir, slug(name))

	y, err := n.ToYAML()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(base+".yaml", y, 0o644); err != nil {
		return nil, err
	}
	gj, err := viz.NetworkGeoJSON(n)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(base+".geojson", gj, 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(base+".svg", viz.NetworkSVG(n, viz.SVGOptions{}), 0o644); err != nil {
		return nil, err
	}

	summary := fmt.Sprintf("%s @ %s: %d towers, %d links", name, date,
		len(n.Towers), len(n.Links))
	if r, ok := n.BestRoute(hftnetview.PathNY4()); ok {
		summary += fmt.Sprintf(", CME-NY4 %s over %d towers", r.Latency, r.TowerCount)
	} else {
		summary += ", not connected CME-NY4"
	}
	fmt.Println(summary)
	return n, nil
}

// analyzeYAML loads a published network YAML file and runs the path
// analyses on it directly — no license database required.
func analyzeYAML(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	nf, err := core.ParseNetworkYAML(data)
	if err != nil {
		return err
	}
	n, err := core.NetworkFromFile(nf, sites.All, core.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("%s @ %s: %d towers, %d links\n", n.Licensee, nf.Date,
		len(n.Towers), len(n.Links))
	for _, p := range sites.CorridorPaths() {
		r, ok := n.BestRoute(p)
		if !ok {
			fmt.Printf("  %-12s not connected\n", p.Name())
			continue
		}
		apa, _ := n.APA(p)
		fmt.Printf("  %-12s %s over %d towers (%d hops), APA %.0f%%\n",
			p.Name(), r.Latency, r.TowerCount, r.HopCount(), apa*100)
	}
	return nil
}

func slug(name string) string {
	var b strings.Builder
	lastDash := true // suppress leading dash
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
