// Command ulsserver runs the simulated FCC Universal Licensing System
// portal over a license database, serving the geographic / site-based /
// licensee search interfaces and per-license detail pages that the
// scraping pipeline consumes.
//
// Usage:
//
//	ulsserver [-addr :8080] [-bulk corpus.uls]
//
// Without -bulk, the built-in synthetic corridor corpus is served.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"hftnetview"
	"hftnetview/internal/ulsserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bulk := flag.String("bulk", "", "ULS bulk file to serve (default: synthetic corpus)")
	flag.Parse()

	db, err := loadDB(*bulk)
	if err != nil {
		log.Fatalf("ulsserver: %v", err)
	}
	log.Printf("ulsserver: serving %d licenses from %d licensees on %s",
		db.Len(), len(db.Licensees()), *addr)
	if err := http.ListenAndServe(*addr, ulsserver.New(db)); err != nil {
		log.Fatalf("ulsserver: %v", err)
	}
}

func loadDB(bulkPath string) (*hftnetview.Database, error) {
	if bulkPath == "" {
		return hftnetview.GenerateCorpus()
	}
	f, err := os.Open(bulkPath)
	if err != nil {
		return nil, fmt.Errorf("opening bulk file: %w", err)
	}
	defer f.Close()
	return hftnetview.ReadBulk(f)
}
