// Command ulsserver runs the simulated FCC Universal Licensing System
// portal over a license database, serving the geographic / site-based /
// licensee search interfaces and per-license detail pages that the
// scraping pipeline consumes.
//
// Usage:
//
//	ulsserver [-addr :8080] [-bulk corpus.uls]
//	          [-chaos none|flaky|hostile|kind=prob,...] [-chaos-seed 1]
//	          [-fail-every-n 0] [-drain-timeout 10s]
//
// Without -bulk, the built-in synthetic corridor corpus is served.
//
// SIGTERM/SIGINT shut down gracefully: the listener closes, in-flight
// responses get -drain-timeout to complete, and the process exits
// cleanly — so chaos soak tests can restart the portal mid-scrape
// without truncating whatever it was sending.
//
// -chaos turns on the fault-injection layer, which reproduces the live
// portal's bad days: 429 throttling with Retry-After, 503 bursts,
// request hangs, truncated bodies, and malformed payloads. Faults are
// drawn from a seeded RNG, so a given -chaos-seed makes a failing run
// reproducible. -fail-every-n is the legacy deterministic knob: every
// Nth request fails with 503.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hftnetview"
	"hftnetview/internal/serve"
	"hftnetview/internal/ulsserver"
	"hftnetview/internal/ulsserver/chaos"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	bulk := flag.String("bulk", "", "ULS bulk file to serve (default: synthetic corpus)")
	chaosSpec := flag.String("chaos", "none",
		"fault profile: none, flaky, hostile, or kind=prob,... "+
			"(kinds: rate_limit, unavailable, hang, truncate, malformed)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault RNG (reproducible failures)")
	failEveryN := flag.Int64("fail-every-n", 0, "fail every Nth request with 503 (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
	flag.Parse()

	db, err := loadDB(*bulk)
	if err != nil {
		log.Fatalf("ulsserver: %v", err)
	}
	srv := ulsserver.New(db)
	srv.FailEveryN.Store(*failEveryN)

	profile, err := chaos.Parse(*chaosSpec, *chaosSeed)
	if err != nil {
		log.Fatalf("ulsserver: %v", err)
	}
	var handler http.Handler = srv
	if profile.FaultRate() > 0 {
		handler = chaos.Wrap(srv, profile)
		log.Printf("ulsserver: chaos profile %q (%.0f%% faults, seed %d)",
			*chaosSpec, 100*profile.FaultRate(), *chaosSeed)
	}

	log.Printf("ulsserver: serving %d licenses from %d licensees on %s",
		db.Len(), len(db.Licensees()), *addr)
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	if err := serve.ListenAndServeGraceful(httpSrv, serve.GracefulOptions{
		DrainTimeout: *drainTimeout,
	}); err != nil {
		log.Fatalf("ulsserver: %v", err)
	}
	log.Printf("ulsserver: drained cleanly")
}

func loadDB(bulkPath string) (*hftnetview.Database, error) {
	if bulkPath == "" {
		return hftnetview.GenerateCorpus()
	}
	f, err := os.Open(bulkPath)
	if err != nil {
		return nil, fmt.Errorf("opening bulk file: %w", err)
	}
	defer f.Close()
	return hftnetview.ReadBulk(f)
}
