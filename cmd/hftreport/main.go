// Command hftreport regenerates every table and figure of the paper's
// evaluation from a license database (default: the synthetic corpus).
//
// Usage:
//
//	hftreport [-bulk corpus.uls] [-exp all|table1|table2|table3|fig1|
//	          fig2|fig3|fig4a|fig4b|fig5|weather|overhead|entity|race|design|diverse|availability|
//	          scrape] [-out out/] [-grid yearly|monthly|daily]
//	          [-storms 25] [-margin-db 40]
//	          [-lenient [-max-error-rate 0.5] [-quarantine-out q.tsv]]
//
// -grid densifies the fig1/fig2 longitudinal sweeps from the paper's
// yearly samples to monthly or daily grids; the engine's delta replay
// resolves every between-event date to a shared anchor snapshot, so
// even the daily grid costs one linear pass over the license event log
// (the closing stats line reports delta re-key hits vs keyframe-backed
// rebuilds).
//
// With -lenient, a dirty -bulk file is salvaged instead of aborting the
// run: malformed records are skipped, the rest of each license is
// recovered, and the ingest report is printed to stderr.
//
// Textual experiments print to stdout; fig3 writes SVG/GeoJSON files to
// -out; scrape spins an in-process portal and runs the §2.2 pipeline
// against real HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"hftnetview"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
	"hftnetview/internal/uls"
	"hftnetview/internal/ulsserver"
)

func main() {
	bulk := flag.String("bulk", "", "ULS bulk file (default: synthetic corpus)")
	exp := flag.String("exp", "all", "experiment to run")
	outDir := flag.String("out", "out", "output directory for figure artifacts")
	grid := flag.String("grid", "yearly", "fig1/fig2 sampling grid: yearly, monthly, or daily")
	dataDir := flag.String("data", "", "also write each table as a .dat plot file here")
	storms := flag.Int("storms", 25, "weather experiment storm count")
	marginDB := flag.Float64("margin-db", 40, "weather experiment fade margin")
	lenient := flag.Bool("lenient", false, "salvage malformed bulk records instead of aborting")
	maxErrorRate := flag.Float64("max-error-rate", 0, "with -lenient, abort if more than this fraction of record lines is bad (0 = no budget)")
	quarantineOut := flag.String("quarantine-out", "", "with -lenient, write quarantined call signs to this file")
	flag.Parse()

	db, err := loadDB(*bulk, *lenient, *maxErrorRate, *quarantineOut)
	if err != nil {
		log.Fatalf("hftreport: %v", err)
	}
	date := hftnetview.Snapshot()

	// One snapshot engine backs every experiment: networks reconstructed
	// for Table 1 are served from cache to the weather, availability,
	// race, and entity runs instead of being rebuilt per table.
	eng := hftnetview.NewEngine(db)

	run := func(name string) error {
		var t *report.Table
		var err error
		switch name {
		case "table1":
			t, err = report.Table1(eng, date)
		case "table2":
			t, err = report.Table2(eng, date)
		case "table3":
			t, err = report.Table3(eng, date)
		case "fig1":
			t, err = report.Fig1Grid(eng, 2013, 2020, *grid)
		case "fig2":
			t, err = report.Fig2Grid(eng, 2013, 2020, *grid)
		case "fig3":
			return fig3(eng, *outDir)
		case "fig4a":
			t, err = report.Fig4a(eng, date)
		case "fig4b":
			t, err = report.Fig4b(eng, date)
		case "fig5":
			t, err = report.Fig5()
		case "weather":
			t, err = report.Weather(eng, date, *storms, *marginDB)
		case "overhead":
			t, err = report.OverheadSweep(eng, date)
		case "entity":
			t, err = report.EntityResolution(eng, date)
		case "race":
			t, err = report.RaceStrategies(eng, date, *storms, *marginDB, 2e-6)
		case "design":
			t, err = report.DesignSweep()
		case "diverse":
			t, err = report.DiverseRoutes(eng, date, 3)
		case "availability":
			t, err = report.AvailabilityBudget(eng, date, *marginDB)
		case "scrape":
			return runScrape(db)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		if *dataDir != "" {
			if err := os.MkdirAll(*dataDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*dataDir, name+".dat"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := t.WriteData(f); err != nil {
				return err
			}
		}
		return nil
	}

	experiments := []string{*exp}
	if *exp == "all" {
		experiments = []string{"table1", "table2", "table3", "fig1", "fig2",
			"fig3", "fig4a", "fig4b", "fig5", "weather", "overhead",
			"entity", "race", "design", "diverse", "availability", "scrape"}
	}
	for _, name := range experiments {
		if err := run(name); err != nil {
			log.Fatalf("hftreport: %s: %v", name, err)
		}
	}

	st := eng.Stats()
	fmt.Printf("snapshot engine: %d distinct snapshots, %d rebuilds, %d hits, %d coalesced\n",
		st.Entries, st.Rebuilds, st.Hits, st.Coalesced)
	fmt.Printf("delta replay: %d anchor re-key hits, %d delta rebuilds, %d keyframe restores, %d events replayed, %d keyframes saved\n",
		st.DeltaHits, st.DeltaBuilds, st.KeyframeRestores, st.EventsReplayed, st.KeyframesSaved)
}

func loadDB(bulkPath string, lenient bool, maxErrorRate float64, quarantineOut string) (*hftnetview.Database, error) {
	if bulkPath == "" {
		return hftnetview.GenerateCorpus()
	}
	f, err := os.Open(bulkPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !lenient {
		return hftnetview.ReadBulk(f)
	}
	db, rep, err := hftnetview.ReadBulkWithOptions(f, hftnetview.ReadBulkOptions{
		Mode:         hftnetview.Lenient,
		MaxErrorRate: maxErrorRate,
	})
	if rep != nil {
		fmt.Fprint(os.Stderr, rep)
	}
	if err != nil {
		return nil, err
	}
	if quarantineOut != "" {
		qf, err := os.Create(quarantineOut)
		if err != nil {
			return nil, err
		}
		defer qf.Close()
		if err := rep.WriteQuarantine(qf); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func fig3(eng *hftnetview.Engine, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	dates := []uls.Date{
		uls.NewDate(2016, time.January, 1),
		uls.NewDate(2020, time.April, 1),
	}
	files, err := report.Fig3(eng, "New Line Networks", dates)
	if err != nil {
		return err
	}
	for name, data := range files {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("fig3: wrote %s (%d bytes)\n", path, len(data))
	}
	fmt.Println()
	diff, err := report.Fig3Diff(eng, "New Line Networks", dates[0], dates[1])
	if err != nil {
		return err
	}
	fmt.Println(diff.String())
	return nil
}

func runScrape(db *hftnetview.Database) error {
	ts := httptest.NewServer(ulsserver.New(db))
	defer ts.Close()
	c := scrape.NewClient(ts.URL)
	c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	scraped, funnel, err := scrape.Run(context.Background(), c, scrape.DefaultPipelineOptions())
	if err != nil {
		return err
	}
	t := report.ScrapeFunnelTable(funnel.GeographicMatches, funnel.Candidates,
		funnel.Shortlisted, funnel.LicensesScraped, funnel.ShortlistedNames)
	fmt.Println(t.String())
	fmt.Printf("scraped %d licenses over HTTP in %v\n\n", scraped.Len(),
		time.Since(start).Round(time.Millisecond))
	return nil
}
