// Command hftfront is the serving fleet's failover front tier: it
// health-checks a set of hftserve replicas, consistent-hashes each
// licensee's queries onto a stable replica (keeping that replica's
// snapshot memos hot), hedges slow reads against the next replica in
// ring order, fails over on replica errors, excludes replicas whose
// corpus generation falls too far behind the primary's, and sheds with
// 503 + jittered Retry-After when no replica is serviceable.
//
// Replicas reach the front two ways: statically, as permanent
// -replica members, or by self-registering at POST /v1/fleet/join
// (hftserve -announce), holding a TTL lease renewed on a heartbeat —
// a replica that crashes or is partitioned away stops renewing and is
// evicted from the routing ring within one -lease-ttl, no operator in
// the loop. When fewer than -min-healthy members are routable the
// front sheds every request with 503 + Retry-After rather than piling
// the whole fleet's load onto a rump.
//
// With -promote the front also elects the fleet's write source: the
// healthy member holding the newest generation is promoted (ties break
// on the smallest name), published at GET /v1/fleet/source with a
// monotonically increasing epoch, and handed to joining members in
// their lease grant. A healthy incumbent is never displaced; when the
// source dies or its lease lapses the role is re-elected at the next
// epoch, so a fenced ex-primary that comes back cannot reclaim it.
// Replicas started with hftserve -pull-front follow the elected source
// and refuse stale lower-epoch resolutions.
//
// Bulk generation shipping (/v1/gen/*) proxies like any other read —
// client Range headers pass through, so a replica resuming an
// interrupted segment download keeps its ranged resume across the
// front — but segment fetches are not hedged by default: hedging a
// bulk download doubles replication traffic for latency nobody is
// waiting on, so they fail over sequentially instead (-hedge-bulk
// re-enables hedging there).
//
// Usage:
//
//	hftfront [-replica r1=http://host1:8090 ...]
//	         [-addr :8080] [-primary http://primary:8090] [-promote]
//	         [-staleness-bound 2] [-lease-ttl 3s] [-min-healthy 1]
//	         [-hedge-after 150ms] [-hedge-bulk]
//	         [-request-timeout 15s] [-retry-after 1s]
//	         [-check-interval 250ms] [-fail-after 2] [-vnodes 64]
//	         [-drain-timeout 15s]
//
// Endpoints:
//
//	/v1/fleet/join     replica announce/lease renewal (POST)
//	/v1/fleet/leave    graceful immediate eviction (POST)
//	/v1/fleet/members  the live member table (GET)
//	/v1/fleet/source   the elected source and its fencing epoch (GET)
//	/v1/*     proxied to the fleet (GET/HEAD only)
//	/healthz  the front's own liveness
//	/readyz   fleet readiness: routable replica count + per-replica health
//	/statsz   routing/failover/shed counters + fleet + membership view
//
// The front never serves corpus data itself; a response always comes
// from exactly one replica (named in X-Fleet-Replica) and carries that
// replica's X-Corpus-Generation/X-Corpus-Digest stamp.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"hftnetview/internal/fleet"
	"hftnetview/internal/serve"
)

func main() {
	var replicas []fleet.Replica
	flag.Func("replica", "replica as name=URL (repeatable); bare URLs are named by host:port", func(v string) error {
		name, url, ok := strings.Cut(v, "=")
		if !ok {
			url = v
			name = strings.TrimPrefix(strings.TrimPrefix(v, "http://"), "https://")
		}
		if url == "" || name == "" {
			return fmt.Errorf("bad replica %q, want name=URL", v)
		}
		replicas = append(replicas, fleet.Replica{Name: name, URL: strings.TrimSuffix(url, "/")})
		return nil
	})
	addr := flag.String("addr", ":8080", "listen address")
	primary := flag.String("primary", "", "primary's base URL, polled for the newest generation (enables staleness exclusion)")
	promote := flag.Bool("promote", false, "elect and fence a source replica: promote the healthy member with the newest generation, re-electing (next epoch) when it dies")
	stalenessBound := flag.Int64("staleness-bound", 2, "max generations a replica may lag the primary and still serve")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "membership lease TTL for self-registered replicas")
	minHealthy := flag.Int("min-healthy", 1, "healthy-member floor below which all requests are shed")
	hedgeAfter := flag.Duration("hedge-after", 150*time.Millisecond, "hedge a slow read against the next replica after this long")
	hedgeBulk := flag.Bool("hedge-bulk", false, "hedge bulk segment downloads too (default: segment fetches fail over sequentially, so one slow pull doesn't double the fleet's replication traffic)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "end-to-end deadline per client request, across all attempts")
	retryAfter := flag.Duration("retry-after", time.Second, "base Retry-After hint on shed responses (jittered)")
	checkInterval := flag.Duration("check-interval", 250*time.Millisecond, "health/staleness probe cadence")
	failAfter := flag.Int("fail-after", 2, "consecutive probe failures that eject a replica")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
	flag.Parse()

	// No static replicas is fine: the fleet can be built entirely from
	// self-registering members (hftserve -announce).
	seen := map[string]bool{}
	for _, r := range replicas {
		if seen[r.Name] {
			log.Fatalf("hftfront: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
	}

	f := fleet.NewFront(fleet.FrontConfig{
		Replicas:       replicas,
		Primary:        strings.TrimSuffix(*primary, "/"),
		Promote:        *promote,
		StalenessBound: *stalenessBound,
		LeaseTTL:       *leaseTTL,
		MinHealthy:     *minHealthy,
		HedgeAfter:     *hedgeAfter,
		HedgeBulk:      *hedgeBulk,
		RequestTimeout: *requestTimeout,
		RetryAfter:     *retryAfter,
		CheckInterval:  *checkInterval,
		FailAfter:      *failAfter,
		Vnodes:         *vnodes,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	log.Printf("hftfront: fronting %d static replica(s) on %s (staleness bound %d, lease TTL %v, min healthy %d, hedge %v)",
		len(replicas), *addr, *stalenessBound, *leaseTTL, *minHealthy, *hedgeAfter)
	httpSrv := &http.Server{Addr: *addr, Handler: f.Handler()}
	err := serve.ListenAndServeGraceful(httpSrv, serve.GracefulOptions{
		DrainTimeout: *drainTimeout,
		OnHUP:        func() { log.Printf("hftfront: SIGHUP ignored (nothing to reload)") },
	})
	if err != nil {
		log.Fatalf("hftfront: %v", err)
	}
	log.Printf("hftfront: drained cleanly")
}
