package hftnetview

import (
	"bytes"
	"testing"
)

// TestFacadeWorkflow drives the documented end-to-end workflow through
// the public API only.
func TestFacadeWorkflow(t *testing.T) {
	db, err := GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}

	rows, err := ConnectedNetworks(db, Snapshot(), PathNY4(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("connected networks = %d, want 9", len(rows))
	}
	if rows[0].Licensee != "New Line Networks" {
		t.Errorf("fastest = %s", rows[0].Licensee)
	}

	ranks, err := RankNetworks(db, Snapshot(), CorridorPaths(), 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 {
		t.Fatalf("rankings = %d", len(ranks))
	}

	n, err := Reconstruct(db, "Webline Holdings", Snapshot(),
		[]DataCenter{CME, NY4, NYSE, NASDAQ}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !n.Connected(PathNY4()) {
		t.Error("WH should be connected")
	}

	dates := PaperSampleDates(2013, 2020)
	evo, err := Evolution(db, "New Line Networks", PathNY4(), dates, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(evo) != 8 {
		t.Fatalf("evolution points = %d", len(evo))
	}

	// Bulk round trip through the facade.
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBulk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("bulk round trip %d != %d", back.Len(), db.Len())
	}

	d, err := ParseDate("04/01/2020")
	if err != nil || d != Snapshot() {
		t.Errorf("ParseDate = %v, %v", d, err)
	}
}
