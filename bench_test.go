package hftnetview

// The benchmark suite regenerates every table and figure of the paper
// (one benchmark per experiment, E1–E17 in DESIGN.md) and measures the
// design-choice ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hftnetview/internal/core"
	"hftnetview/internal/graph"
	"hftnetview/internal/radio"
	"hftnetview/internal/report"
	"hftnetview/internal/scrape"
	"hftnetview/internal/sites"
	"hftnetview/internal/uls"
	"hftnetview/internal/ulsserver"
	"hftnetview/internal/viz"
)

var (
	benchOnce sync.Once
	benchDB   *Database
)

func corpus(b *testing.B) *Database {
	b.Helper()
	benchOnce.Do(func() {
		db, err := GenerateCorpus()
		if err != nil {
			b.Fatalf("GenerateCorpus: %v", err)
		}
		benchDB = db
	})
	return benchDB
}

// BenchmarkCorpusGeneration measures the synthetic-corridor generator
// (geometry calibration by bisection plus license emission).
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCorpus(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ConnectedNetworks regenerates Table 1 (E1).
func BenchmarkTable1ConnectedNetworks(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table1(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Rankings regenerates Table 2 (E2).
func BenchmarkTable2Rankings(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table2(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3APA regenerates Table 3 (E3).
func BenchmarkTable3APA(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Table3(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Evolution regenerates Fig 1's series (E4).
func BenchmarkFig1Evolution(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig1(NewEngine(db), 2013, 2020); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ActiveLicenses regenerates Fig 2's series (E5).
func BenchmarkFig2ActiveLicenses(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig2(NewEngine(db), 2013, 2020); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Visualization regenerates the Fig 3 map artifacts (E6).
func BenchmarkFig3Visualization(b *testing.B) {
	db := corpus(b)
	dates := []uls.Date{
		uls.NewDate(2016, time.January, 1),
		uls.NewDate(2020, time.April, 1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig3(NewEngine(db), "New Line Networks", dates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aLinkLengths regenerates Fig 4(a) (E7).
func BenchmarkFig4aLinkLengths(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4a(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4bFrequencies regenerates Fig 4(b) (E8).
func BenchmarkFig4bFrequencies(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4b(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LEO regenerates the Fig 5 comparison (E9).
func BenchmarkFig5LEO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrapePipeline runs the §2.2 funnel over real HTTP against
// an in-process portal (E10).
func BenchmarkScrapePipeline(b *testing.B) {
	db := corpus(b)
	ts := httptest.NewServer(ulsserver.New(db))
	defer ts.Close()
	c := scrape.NewClient(ts.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := scrape.Run(context.Background(), c,
			scrape.DefaultPipelineOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeatherReliability runs the §5 weather extension (E11).
func BenchmarkWeatherReliability(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Weather(NewEngine(db), Snapshot(), 10,
			radio.DefaultFadeMarginDB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverheadSweep runs the §3 per-tower overhead analysis (E12).
func BenchmarkOverheadSweep(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.OverheadSweep(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntityResolution runs the §2.4/§6 joint-entity analysis
// (E13), dominated by the O(pairs) union reconstructions.
func BenchmarkEntityResolution(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.EntityResolution(NewEngine(db), Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRaceStrategies runs the §5 subscription-strategy seasons
// (E14).
func BenchmarkRaceStrategies(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.RaceStrategies(NewEngine(db), Snapshot(), 5, 40, 2e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignSweep runs the cISP-style budgeted design experiment
// (E15).
func BenchmarkDesignSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.DesignSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailabilityBudget runs the rain + multipath availability
// analysis (E17).
func BenchmarkAvailabilityBudget(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.AvailabilityBudget(NewEngine(db), Snapshot(), 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiverseRoutes runs the Yen top-k route analysis (E16).
func BenchmarkDiverseRoutes(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.DiverseRoutes(NewEngine(db), Snapshot(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// The report benchmarks above construct a fresh engine per iteration
// on purpose: they measure the uncached cost of regenerating each
// table. The engine benchmarks below measure what the shared memo
// store buys when analyses repeat.

// evolutionSweep regenerates the full Fig 1 workload — every tracked
// network across every sample date — through one engine.
func evolutionSweep(b *testing.B, eng *Engine) {
	path := PathNY4()
	dates := PaperSampleDates(2013, 2020)
	for _, name := range report.Fig1Networks {
		if _, err := eng.Evolution(name, path, dates, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvolutionUncached is the Fig 1 workload with a cold
// engine every iteration: every snapshot is reconstructed from
// licenses.
func BenchmarkEngineEvolutionUncached(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evolutionSweep(b, NewEngine(db))
	}
}

// BenchmarkEngineEvolutionCached is the same workload through one
// primed engine: every snapshot is a memo hit served as a clone. The
// reported hits/rebuilds metrics prove the reuse.
func BenchmarkEngineEvolutionCached(b *testing.B) {
	db := corpus(b)
	eng := NewEngine(db)
	evolutionSweep(b, eng) // prime the memo store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evolutionSweep(b, eng)
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(float64(st.Hits), "hits")
	b.ReportMetric(float64(st.Rebuilds), "rebuilds")
}

// BenchmarkEngineSnapshotHit measures a single cache-hit snapshot —
// the memo lookup plus the clone-on-return deep copy.
func BenchmarkEngineSnapshotHit(b *testing.B) {
	db := corpus(b)
	eng := NewEngine(db)
	req := SnapshotRequest{
		Licensees: []string{"Webline Holdings"},
		Date:      Snapshot(),
		DCs:       sites.All,
		Opts:      DefaultOptions(),
	}
	if _, err := eng.Snapshot(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Snapshot(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstructOne measures a single network reconstruction.
func BenchmarkReconstructOne(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(db, "Webline Holdings", Snapshot(),
			sites.All, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkWrite and BenchmarkBulkRead measure the ULS bulk codec
// over the full corpus.
func BenchmarkBulkWrite(b *testing.B) {
	db := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBulk(&buf, db); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkBulkRead(b *testing.B) {
	db := corpus(b)
	var buf bytes.Buffer
	if err := WriteBulk(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBulk(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVGRender measures corridor-map rendering alone.
func BenchmarkSVGRender(b *testing.B) {
	db := corpus(b)
	n, err := Reconstruct(db, "Webline Holdings", Snapshot(), sites.All, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = viz.NetworkSVG(n, viz.SVGOptions{})
	}
}

// --- Ablation benchmarks (DESIGN.md "design choices to ablate") ---

// randomGraph builds a reproducible weighted graph for the graph-layer
// ablations.
func randomGraph(nodes, edges int, seed uint64) (*graph.Graph, graph.NodeID, graph.NodeID) {
	rng := rand.New(rand.NewPCG(seed, 17))
	g := graph.New()
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = g.EnsureNode(fmt.Sprintf("n%d", i))
	}
	// A ring guarantees connectivity; extra random edges add structure.
	for i := 0; i < nodes; i++ {
		g.AddEdge(ids[i], ids[(i+1)%nodes], 1+rng.Float64())
	}
	for e := 0; e < edges; e++ {
		a, b := ids[rng.IntN(nodes)], ids[rng.IntN(nodes)]
		if a == b {
			continue
		}
		g.AddEdge(a, b, 1+rng.Float64()*4)
	}
	return g, ids[0], ids[nodes/2]
}

// BenchmarkAblationDijkstraHeap vs Naive: the binary-heap priority queue
// against the O(V²) scan.
func BenchmarkAblationDijkstraHeap(b *testing.B) {
	g, s, t := randomGraph(2000, 6000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ShortestPath(s, t); !ok {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkAblationDijkstraNaive(b *testing.B) {
	g, s, t := randomGraph(2000, 6000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ShortestPathNaive(s, t); !ok {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkAblationDijkstraBidirectional: meet-in-the-middle search
// against the one-sided heap Dijkstra.
func BenchmarkAblationDijkstraBidirectional(b *testing.B) {
	g, s, t := randomGraph(2000, 6000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ShortestPathBidirectional(s, t); !ok {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkAblationAPAFast vs Slow: shortest-path-tree reuse against
// per-edge full recomputation.
func BenchmarkAblationAPAFast(b *testing.B) {
	g, s, t := randomGraph(400, 1200, 2)
	sp, _ := g.ShortestPath(s, t)
	bound := sp.Weight * 1.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EdgeRemovalAnalysisFast(s, t, bound)
	}
}

func BenchmarkAblationAPASlow(b *testing.B) {
	g, s, t := randomGraph(400, 1200, 2)
	sp, _ := g.ShortestPath(s, t)
	bound := sp.Weight * 1.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EdgeRemovalAnalysis(s, t, bound)
	}
}

// asymmetricBraid is a corridor braid like Webline's: a fast rail, a
// 25% slower rail, rungs at every cell. Under a tight latency bound
// the viable paths are few, but a cost-only DFS keeps exploring
// slow-rail prefixes until their accumulated cost alone breaks the
// bound; the distance-to-target prune rejects each one at its first
// slow segment.
func asymmetricBraid(cells int) (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New()
	a := make([]graph.NodeID, cells+1)
	bb := make([]graph.NodeID, cells+1)
	for i := range a {
		a[i] = g.EnsureNode(fmt.Sprintf("a%d", i))
		bb[i] = g.EnsureNode(fmt.Sprintf("b%d", i))
		if _, err := g.AddEdge(a[i], bb[i], 0.02); err != nil {
			panic(err)
		}
	}
	for i := 0; i < cells; i++ {
		g.AddEdge(a[i], a[i+1], 1.0)
		g.AddEdge(bb[i], bb[i+1], 1.25)
	}
	return g, a[0], a[cells]
}

// BenchmarkAblationPathEnumPruned vs Unpruned: distance-to-target
// lower-bound pruning in bounded simple-path enumeration under a tight
// bound. (The prune is an admissible bound: it cannot reject dead-end
// stubs whose shortest way back to the target runs through the visited
// mouth — which is exactly why core.BoundedPaths computes the §5 link
// universe with two Dijkstra trees instead of any enumeration.)
func BenchmarkAblationPathEnumPruned(b *testing.B) {
	g, s, t := asymmetricBraid(18)
	sp, _ := g.ShortestPath(s, t)
	bound := sp.Weight * 1.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PathsWithin(s, t, graph.EnumerateOptions{Bound: bound})
	}
}

func BenchmarkAblationPathEnumUnpruned(b *testing.B) {
	g, s, t := asymmetricBraid(18)
	sp, _ := g.ShortestPath(s, t)
	bound := sp.Weight * 1.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PathsWithin(s, t, graph.EnumerateOptions{Bound: bound, DisablePruning: true})
	}
}

// BenchmarkAblationGeoSearchIndexed vs Scan: the portal's geographic
// search with and without the grid index.
func BenchmarkAblationGeoSearchIndexed(b *testing.B) {
	db := corpus(b)
	center := sites.CME.Location
	db.WithinRadiusIndexed(center, 10e3) // build the index outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.WithinRadiusIndexed(center, 10e3)
	}
}

func BenchmarkAblationGeoSearchScan(b *testing.B) {
	db := corpus(b)
	center := sites.CME.Location
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.WithinRadius(center, 10e3)
	}
}

// BenchmarkAblationBoundedLinksTreeCriterion measures the two-Dijkstra
// bounded-link criterion that replaced exponential enumeration for the
// braided Webline topology (see core.BoundedPaths).
func BenchmarkAblationBoundedLinksTreeCriterion(b *testing.B) {
	db := corpus(b)
	n, err := core.Reconstruct(db, "Webline Holdings", Snapshot(), sites.All,
		core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	path := sites.Path{From: sites.CME, To: sites.NY4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := n.BoundedPaths(path); !ok {
			b.Fatal("no bounded paths")
		}
	}
}

// benchDailyDates is the E22 workload grid: every calendar day from
// 2013 through the paper snapshot (1 April 2020).
func benchDailyDates(b *testing.B) []uls.Date {
	dates, err := core.GridDates(2013, 2020, "daily")
	if err != nil {
		b.Fatal(err)
	}
	return dates
}

// BenchmarkEvolutionDailyFullRebuild is the E22 baseline: a daily-grid
// 2013–2020 evolution sweep on the legacy path — one full stab-query
// reconstruction per date (no engine, no event log).
func BenchmarkEvolutionDailyFullRebuild(b *testing.B) {
	db := corpus(b)
	dates := benchDailyDates(b)
	licensee := report.Fig1Networks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvolutionVia(core.DirectProvider(db), licensee,
			PathNY4(), dates, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvolutionDailyDelta is the same sweep through a cold delta
// engine each iteration: the dates collapse onto their event-log
// anchors and resolve in one linear replay (E22). The gate holding
// this at >=10x over the baseline is TestDeltaSweepBudget.
func BenchmarkEvolutionDailyDelta(b *testing.B) {
	db := corpus(b)
	dates := benchDailyDates(b)
	licensee := report.Fig1Networks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(db).Evolution(licensee,
			PathNY4(), dates, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
